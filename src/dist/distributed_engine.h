/**
 * @file
 * The multi-node data-parallel training engine (performance layer). Each of
 * the cluster's identical servers runs the single-node Smart-Infinity (or
 * baseline) iteration via its own train::IterationBuilder, all inside ONE
 * SimContext; between backward and update the engine stitches in a ring
 * all-reduce of the dense FP32 gradients over the NIC fabric. With
 * overlap_grad_sync the all-reduce is bucketed per transformer block and
 * each bucket launches as soon as every node produced that block's
 * gradients, so gradient sync hides behind the remaining backward compute —
 * and because NIC hops share the nodes' host interconnect links with
 * storage offload flows, the cost of that contention falls out of the
 * max-min flow model instead of being hand-estimated.
 */
#ifndef SMARTINF_DIST_DISTRIBUTED_ENGINE_H
#define SMARTINF_DIST_DISTRIBUTED_ENGINE_H

#include <memory>
#include <string>

#include "train/engine.h"

namespace smartinf::dist {

/** Data-parallel cluster of identical single-node systems. */
class DistributedEngine final : public train::Engine
{
  public:
    DistributedEngine(const train::ModelSpec &model,
                      const train::TrainConfig &train,
                      const train::SystemConfig &system);

    train::IterationResult runIteration() override;
    std::string name() const override;

    /**
     * NIC egress bytes one node contributed to gradient sync in the last
     * runIteration() (== ringAllReduceTxBytesPerNode of the gradients).
     */
    Bytes lastSyncTxBytesPerNode() const { return last_sync_tx_per_node_; }

    /**
     * Tokens the whole cluster consumes per iteration: data parallelism
     * multiplies the per-node batch by the node count, so scale-out speedup
     * is a *throughput* ratio, not an iteration-time ratio.
     */
    double clusterTokensPerIteration() const;

  private:
    Bytes last_sync_tx_per_node_ = 0.0;
};

/**
 * Backward-compatible alias for train::makeEngine(), which now covers the
 * full node range itself (num_nodes selects the scale-out path). Prefer
 * train::makeEngine in new code.
 */
std::unique_ptr<train::Engine>
makeDistributedEngine(const train::ModelSpec &model,
                      const train::TrainConfig &train,
                      const train::SystemConfig &system);

} // namespace smartinf::dist

#endif // SMARTINF_DIST_DISTRIBUTED_ENGINE_H
