#include "dist/collective.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "train/system_builder.h"

namespace smartinf::dist {

// ---- analytic wire-byte accounting ------------------------------------------

Bytes
ringReduceScatterTxBytesPerNode(Bytes buffer, int nodes)
{
    SI_REQUIRE(nodes >= 1, "need at least one node");
    return (nodes - 1) * (buffer / nodes);
}

Bytes
ringAllGatherTxBytesPerNode(Bytes buffer, int nodes)
{
    SI_REQUIRE(nodes >= 1, "need at least one node");
    return (nodes - 1) * (buffer / nodes);
}

Bytes
ringAllReduceTxBytesPerNode(Bytes buffer, int nodes)
{
    return ringReduceScatterTxBytesPerNode(buffer, nodes) +
           ringAllGatherTxBytesPerNode(buffer, nodes);
}

const char *
collectiveName(CollectiveKind kind)
{
    switch (kind) {
      case CollectiveKind::ReduceScatter: return "reduce-scatter";
      case CollectiveKind::AllGather: return "all-gather";
      case CollectiveKind::AllReduce: return "all-reduce";
    }
    return "?";
}

Bytes
collectiveTxBytesPerNode(CollectiveKind kind, Bytes buffer, int nodes)
{
    switch (kind) {
      case CollectiveKind::ReduceScatter:
        return ringReduceScatterTxBytesPerNode(buffer, nodes);
      case CollectiveKind::AllGather:
        return ringAllGatherTxBytesPerNode(buffer, nodes);
      case CollectiveKind::AllReduce:
        return ringAllReduceTxBytesPerNode(buffer, nodes);
    }
    return 0.0;
}

// ---- performance layer: flow schedules --------------------------------------

CollectiveSchedule
scheduleRingCollective(train::SimContext &ctx, CollectiveKind kind, int nodes,
                       Bytes bytes,
                       const std::vector<sim::TaskGraph::TaskId> &deps,
                       sim::TaskLabel label)
{
    using TaskId = sim::TaskGraph::TaskId;
    SI_REQUIRE(nodes >= 1, "need at least one node");
    SI_REQUIRE(bytes >= 0.0, "negative collective size");
    SI_REQUIRE(deps.empty() || static_cast<int>(deps.size()) == nodes,
               "need one gating dependency per node (or none)");

    CollectiveSchedule out;
    out.done = ctx.graph.barrier(label);
    if (nodes == 1) {
        // Degenerate ring: nothing crosses the fabric, but the barrier
        // still sequences against the gating dependencies.
        if (!deps.empty())
            ctx.graph.dependsOn(out.done, deps[0]);
        return out;
    }

    out.steps = kind == CollectiveKind::AllReduce ? 2 * (nodes - 1)
                                                  : nodes - 1;
    const Bytes chunk = bytes / nodes;
    const Seconds latency = ctx.system.nic_latency;

    // One flow per (step, sender). The route crosses the sender's shared
    // host interconnect (gradients live in host DRAM), its NIC egress, the
    // receiver's NIC ingress, and the receiver's host interconnect — so
    // collective traffic and storage-offload traffic contend end to end.
    std::vector<TaskId> prev_step(nodes, sim::TaskGraph::kInvalidTask);
    std::vector<TaskId> cur_step(nodes, sim::TaskGraph::kInvalidTask);
    for (int s = 0; s < out.steps; ++s) {
        for (int i = 0; i < nodes; ++i) {
            const int j = (i + 1) % nodes;
            const std::string src = train::nodePrefix(i);
            const std::string dst = train::nodePrefix(j);
            net::Route route = {&ctx.topo.link(src + "host.down"),
                                &ctx.topo.link(src + "nic.tx"),
                                &ctx.topo.link(dst + "nic.rx"),
                                &ctx.topo.link(dst + "host.up")};
            // Hop labels carry (step, sender); which collective they
            // belong to is the enclosing label's concern.
            TaskId hop = ctx.graph.add(
                [&ctx, route = std::move(route), chunk,
                 latency](std::function<void()> done) {
                    ctx.net.startFlow(route, chunk, std::move(done), latency);
                },
                {"sync.hop", s, i});
            if (s == 0) {
                if (!deps.empty())
                    ctx.graph.dependsOn(hop, deps[i]);
            } else {
                // NIC serialization: one send in flight per node per step.
                ctx.graph.dependsOn(hop, prev_step[i]);
                // Data dependency: the chunk forwarded in step s arrived
                // from the ring predecessor in step s-1.
                ctx.graph.dependsOn(hop, prev_step[(i - 1 + nodes) % nodes]);
            }
            cur_step[i] = hop;
        }
        std::swap(prev_step, cur_step);
    }
    for (int i = 0; i < nodes; ++i)
        ctx.graph.dependsOn(out.done, prev_step[i]);

    out.tx_bytes_per_node = out.steps * chunk;
    ctx.traffic.internode_tx += nodes * out.tx_bytes_per_node;
    ctx.traffic.internode_rx += nodes * out.tx_bytes_per_node;
    return out;
}

// ---- functional layer: deterministic in-memory rings ------------------------

std::pair<std::size_t, std::size_t>
shardRange(std::size_t n, int nodes, int shard)
{
    SI_REQUIRE(nodes >= 1 && shard >= 0 && shard < nodes, "bad shard index");
    const std::size_t base = n / nodes;
    const std::size_t rem = n % nodes;
    const std::size_t s = static_cast<std::size_t>(shard);
    const std::size_t begin = s * base + std::min(s, rem);
    const std::size_t len = base + (s < rem ? 1 : 0);
    return {begin, begin + len};
}

void
functionalRingReduceScatter(const std::vector<float *> &replicas,
                            std::size_t n, bool average)
{
    const int nodes = static_cast<int>(replicas.size());
    SI_REQUIRE(nodes >= 1, "need at least one replica");
    const float inv = 1.0f / static_cast<float>(nodes);
    for (int s = 0; s < nodes; ++s) {
        const auto [begin, end] = shardRange(n, nodes, s);
        // Shard s circulates the ring starting at node s+1 and ends fully
        // reduced on its owner, node s. Accumulating in exactly that order
        // makes the owner's result a single well-defined bit pattern.
        float *owner = replicas[s];
        for (std::size_t e = begin; e < end; ++e) {
            float acc = replicas[(s + 1) % nodes][e];
            for (int k = 2; k <= nodes; ++k)
                acc += replicas[(s + k) % nodes][e];
            owner[e] = average ? acc * inv : acc;
        }
    }
}

void
functionalRingAllGather(const std::vector<float *> &replicas, std::size_t n)
{
    const int nodes = static_cast<int>(replicas.size());
    SI_REQUIRE(nodes >= 1, "need at least one replica");
    for (int s = 0; s < nodes; ++s) {
        const auto [begin, end] = shardRange(n, nodes, s);
        const float *owner = replicas[s];
        for (int i = 0; i < nodes; ++i) {
            if (i == s)
                continue;
            std::copy(owner + begin, owner + end, replicas[i] + begin);
        }
    }
}

void
functionalRingAllReduce(const std::vector<float *> &replicas, std::size_t n,
                        bool average)
{
    functionalRingReduceScatter(replicas, n, average);
    functionalRingAllGather(replicas, n);
}

} // namespace smartinf::dist
