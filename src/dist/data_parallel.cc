#include "dist/data_parallel.h"

#include <algorithm>

#include "common/logging.h"
#include "dist/collective.h"

namespace smartinf::dist {

DataParallelCluster::DataParallelCluster(const DataParallelConfig &config)
    : config_(config)
{
    SI_REQUIRE(config.num_nodes >= 1, "need at least one node");
    const auto errors = config.node.validate();
    SI_REQUIRE(errors.empty(), "invalid per-node ClusterConfig: ",
               train::joinErrors(errors));
    replicas_.reserve(config.num_nodes);
    for (int i = 0; i < config.num_nodes; ++i)
        replicas_.push_back(
            std::make_unique<SmartInfinityCluster>(config.node));
}

DataParallelCluster::~DataParallelCluster() = default;

void
DataParallelCluster::initialize(const float *params, std::size_t n)
{
    for (auto &replica : replicas_)
        replica->initialize(params, n);
    reduce_buffers_.assign(replicas_.size(), std::vector<float>(n));
}

void
DataParallelCluster::step(const float *grads, std::size_t n, uint64_t t)
{
    // Plain UpdateBackend semantics: every node drew the same batch.
    std::vector<const float *> local(replicas_.size(), grads);
    stepLocal(local, n, t);
}

void
DataParallelCluster::stepLocal(const std::vector<const float *> &grads,
                               std::size_t n, uint64_t t)
{
    SI_REQUIRE(grads.size() == replicas_.size(),
               "need one gradient buffer per node");
    SI_REQUIRE(!reduce_buffers_.empty() && reduce_buffers_[0].size() == n,
               "initialize() must precede step() with matching size");

    std::vector<float *> buffers(replicas_.size());
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
        std::copy(grads[i], grads[i] + n, reduce_buffers_[i].begin());
        buffers[i] = reduce_buffers_[i].data();
    }
    functionalRingAllReduce(buffers, n, config_.average_gradients);
    last_reduce_tx_ = ringAllReduceTxBytesPerNode(n * kBytesFp32,
                                                  numNodes());

    // Every node now holds the bit-identical reduced gradient; each runs
    // its own near-storage update, keeping the replicas in lockstep.
    for (std::size_t i = 0; i < replicas_.size(); ++i)
        replicas_[i]->step(buffers[i], n, t);
    SI_ASSERT(replicasInSync(), "replicas diverged after a reduced step");
}

const float *
DataParallelCluster::masterParams() const
{
    return replicas_[0]->masterParams();
}

std::size_t
DataParallelCluster::paramCount() const
{
    return replicas_[0]->paramCount();
}

const char *
DataParallelCluster::backendName() const
{
    return "data-parallel[smart-infinity]";
}

bool
DataParallelCluster::replicasInSync() const
{
    const std::size_t n = replicas_[0]->paramCount();
    const float *reference = replicas_[0]->masterParams();
    for (std::size_t i = 1; i < replicas_.size(); ++i) {
        const float *params = replicas_[i]->masterParams();
        if (!std::equal(reference, reference + n, params))
            return false;
    }
    return true;
}

} // namespace smartinf::dist
