/**
 * @file
 * Collective communication primitives for data-parallel scale-out, in the
 * same two coupled layers as the rest of the reproduction (see DESIGN.md):
 *
 *  - The *functional* layer: deterministic ring reduce-scatter / all-gather
 *    over in-memory replica buffers. Every shard is reduced in one fixed
 *    ring order and the result copied verbatim to all replicas, so replicas
 *    end bit-identical by construction — the property DataParallelCluster
 *    asserts.
 *  - The *performance* layer: the same ring schedules expressed as flow
 *    tasks over net::Topology NIC links ("n<i>.nic.tx"/"n<i>.nic.rx" from
 *    train::buildNicLinks). Each hop also traverses the endpoint nodes'
 *    shared host interconnect, so collective traffic contends with PCIe
 *    storage-offload traffic in the same max-min fluid-flow model.
 *
 * Wire-byte accounting is analytic and checkable: a ring all-reduce moves
 * 2(N-1)/N * buffer bytes out of every node (reduce-scatter and all-gather
 * move (N-1)/N each).
 */
#ifndef SMARTINF_DIST_COLLECTIVE_H
#define SMARTINF_DIST_COLLECTIVE_H

#include <cstddef>
#include <string>
#include <vector>

#include "sim/task_graph.h"
#include "train/iteration_builder.h"

namespace smartinf::dist {

// ---- analytic wire-byte accounting ------------------------------------------

/** Egress bytes per node of a ring all-reduce over @p buffer bytes. */
Bytes ringAllReduceTxBytesPerNode(Bytes buffer, int nodes);
/** Egress bytes per node of a ring reduce-scatter. */
Bytes ringReduceScatterTxBytesPerNode(Bytes buffer, int nodes);
/** Egress bytes per node of a ring all-gather. */
Bytes ringAllGatherTxBytesPerNode(Bytes buffer, int nodes);

/** The collectives the scale-out layer schedules. */
enum class CollectiveKind { ReduceScatter, AllGather, AllReduce };

const char *collectiveName(CollectiveKind kind);

/** Dispatch to the per-kind analytic formula. */
Bytes collectiveTxBytesPerNode(CollectiveKind kind, Bytes buffer, int nodes);

// ---- performance layer: flow schedules --------------------------------------

/** Handle to one scheduled collective in a SimContext's task graph. */
struct CollectiveSchedule {
    /** Completes when every node holds its result. */
    sim::TaskGraph::TaskId done = sim::TaskGraph::kInvalidTask;
    /** NIC egress bytes each node contributes (== the analytic formula). */
    Bytes tx_bytes_per_node = 0.0;
    /** Ring steps scheduled (2(N-1) for all-reduce, N-1 otherwise). */
    int steps = 0;
};

/**
 * Append a ring collective over @p bytes to @p ctx's task graph. Node i's
 * first hop waits on @p deps[i] (pass an empty vector to start immediately).
 * In ring step s node i sends one bytes/N chunk to node (i+1) % N; step s+1
 * on node i waits for its own step-s send (NIC serialization) and for the
 * chunk arriving from node i-1 (data dependency). NIC traffic is accounted
 * into ctx.traffic.internode_tx/rx. A 1-node "collective" is a no-op
 * barrier moving zero bytes.
 */
CollectiveSchedule
scheduleRingCollective(train::SimContext &ctx, CollectiveKind kind, int nodes,
                       Bytes bytes,
                       const std::vector<sim::TaskGraph::TaskId> &deps,
                       sim::TaskLabel label);

// ---- functional layer: deterministic in-memory rings ------------------------

/**
 * Ring reduce-scatter over @p replicas (each a buffer of @p n floats):
 * shard s ends up fully reduced on replica s % N, accumulated in the fixed
 * ring order (s+1, s+2, ..., s+N) mod N. When @p average, the reduced shard
 * is divided by the replica count.
 */
void functionalRingReduceScatter(const std::vector<float *> &replicas,
                                 std::size_t n, bool average);

/** Ring all-gather: broadcast each shard from its owner to all replicas. */
void functionalRingAllGather(const std::vector<float *> &replicas,
                             std::size_t n);

/**
 * Ring all-reduce == reduce-scatter + all-gather. Afterwards every replica
 * holds the bit-identical (averaged) reduction of all inputs.
 */
void functionalRingAllReduce(const std::vector<float *> &replicas,
                             std::size_t n, bool average);

/** Element range [begin, end) of shard @p shard when @p n splits @p nodes ways. */
std::pair<std::size_t, std::size_t> shardRange(std::size_t n, int nodes,
                                               int shard);

} // namespace smartinf::dist

#endif // SMARTINF_DIST_COLLECTIVE_H
