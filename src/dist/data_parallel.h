/**
 * @file
 * Functional data-parallel deployment: R replicas of a SmartInfinityCluster,
 * one per node, each holding the full parameter/optimizer-state set on its
 * own CSDs. A step reduces the replicas' local gradients with the
 * deterministic functional ring collectives (dist/collective.h) — shard
 * gradients, reduce each shard in fixed ring order, all-gather the result —
 * then every node applies the identical reduced gradient through its
 * near-storage update pipeline. Replicas therefore stay bit-identical to
 * *each other* — the invariant replicasInSync() checks. Against a lone
 * SmartInfinityCluster fed the same stream, equality additionally needs
 * the ring-averaged gradient to reproduce the input bitwise: guaranteed
 * at 2 replicas (x + x is exact and /2 is a power of two), ulp-level
 * deviation possible at other node counts where the sequential sum
 * rounds or 1/N is not representable.
 */
#ifndef SMARTINF_DIST_DATA_PARALLEL_H
#define SMARTINF_DIST_DATA_PARALLEL_H

#include <memory>
#include <vector>

#include "core/smart_infinity.h"

namespace smartinf::dist {

/** Configuration of a functional data-parallel cluster. */
struct DataParallelConfig {
    /** Replica (node) count. */
    int num_nodes = 2;
    /** Per-node Smart-Infinity deployment. */
    ClusterConfig node;
    /** Average (true, data-parallel convention) or sum local gradients. */
    bool average_gradients = true;
};

/**
 * Multiple Smart-Infinity replicas behind the single UpdateBackend seam.
 * Through the plain UpdateBackend interface every replica receives the same
 * gradients (as if all nodes drew identical batches); stepLocal() is the
 * genuinely data-parallel path with one gradient buffer per node.
 */
class DataParallelCluster final : public nn::UpdateBackend
{
  public:
    explicit DataParallelCluster(const DataParallelConfig &config);
    ~DataParallelCluster() override;

    /** @name nn::UpdateBackend @{ */
    void initialize(const float *params, std::size_t n) override;
    void step(const float *grads, std::size_t n, uint64_t t) override;
    const float *masterParams() const override;
    std::size_t paramCount() const override;
    const char *backendName() const override;
    /** @} */

    /**
     * Data-parallel step: @p grads holds one local gradient buffer per
     * node. Reduces them across replicas (ring reduce-scatter +
     * all-gather), then runs every node's near-storage update.
     */
    void stepLocal(const std::vector<const float *> &grads, std::size_t n,
                   uint64_t t);

    int numNodes() const { return static_cast<int>(replicas_.size()); }
    const SmartInfinityCluster &replica(int idx) const { return *replicas_[idx]; }
    SmartInfinityCluster &replica(int idx) { return *replicas_[idx]; }

    /** True when all replicas hold bit-identical master parameters. */
    bool replicasInSync() const;

    /**
     * NIC egress bytes per node of the last step's gradient reduction
     * (ring all-reduce: 2(N-1)/N of the dense gradient bytes).
     */
    Bytes lastReduceTxBytesPerNode() const { return last_reduce_tx_; }

    const DataParallelConfig &config() const { return config_; }

  private:
    DataParallelConfig config_;
    std::vector<std::unique_ptr<SmartInfinityCluster>> replicas_;
    /** Per-replica staging buffers for the functional ring reduction. */
    std::vector<std::vector<float>> reduce_buffers_;
    Bytes last_reduce_tx_ = 0.0;
};

} // namespace smartinf::dist

#endif // SMARTINF_DIST_DATA_PARALLEL_H
