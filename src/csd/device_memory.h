/**
 * @file
 * FPGA device (DDR4) memory allocator with a hard capacity budget. The
 * paper's transfer-handler optimization exists precisely because naive
 * double-buffering of subgroups overflows the SmartSSD's 4 GB device DRAM
 * (§IV-B, "out-of-memory (OOM) errors in device memory"); this allocator
 * makes that failure mode observable and testable.
 */
#ifndef SMARTINF_CSD_DEVICE_MEMORY_H
#define SMARTINF_CSD_DEVICE_MEMORY_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace smartinf::csd {

class DeviceMemory;

/** RAII handle to a device-memory allocation (move-only). */
class DeviceBuffer
{
  public:
    DeviceBuffer() = default;
    DeviceBuffer(DeviceBuffer &&other) noexcept;
    DeviceBuffer &operator=(DeviceBuffer &&other) noexcept;
    DeviceBuffer(const DeviceBuffer &) = delete;
    DeviceBuffer &operator=(const DeviceBuffer &) = delete;
    ~DeviceBuffer();

    uint8_t *data() { return data_.get(); }
    const uint8_t *data() const { return data_.get(); }
    float *floats() { return reinterpret_cast<float *>(data_.get()); }
    const float *floats() const
    {
        return reinterpret_cast<const float *>(data_.get());
    }
    std::size_t size() const { return size_; }
    bool valid() const { return data_ != nullptr; }

    /** Release the allocation back to the pool early. */
    void release();

  private:
    friend class DeviceMemory;
    DeviceBuffer(DeviceMemory *pool, std::size_t size, std::string tag);

    DeviceMemory *pool_ = nullptr;
    std::unique_ptr<uint8_t[]> data_;
    std::size_t size_ = 0;
    std::string tag_;
};

/** Accounting allocator for one FPGA's DRAM. */
class DeviceMemory
{
  public:
    explicit DeviceMemory(std::size_t capacity) : capacity_(capacity) {}

    /**
     * Allocate @p bytes (16-byte aligned internally); fatal() with an OOM
     * diagnostic naming @p tag when the budget is exceeded.
     */
    DeviceBuffer allocate(std::size_t bytes, const std::string &tag);

    /** Non-fatal probe: would an allocation of @p bytes fit right now? */
    bool wouldFit(std::size_t bytes) const;

    std::size_t capacity() const { return capacity_; }
    std::size_t allocated() const { return allocated_; }
    /** High-water mark of concurrent allocation. */
    std::size_t peakAllocated() const { return peak_; }

  private:
    friend class DeviceBuffer;
    void free(std::size_t bytes);

    std::size_t capacity_;
    std::size_t allocated_ = 0;
    std::size_t peak_ = 0;
};

} // namespace smartinf::csd

#endif // SMARTINF_CSD_DEVICE_MEMORY_H
