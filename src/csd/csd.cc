#include "csd/csd.h"

#include "common/logging.h"
#include "common/units.h"

namespace smartinf::csd {

CsdSpec
CsdSpec::smartSsd()
{
    // Internal path is PCIe Gen3 x4 (~3.94 GB/s raw, ~3.3 GB/s effective);
    // reads out of the SSD are further capped by the NVMe itself.
    return CsdSpec{storage::SsdSpec::smartSsdNvme(), GBps(3.3), GiB(4.0),
                   30e-6};
}

Csd::Csd(std::string name, const CsdSpec &spec,
         std::size_t functional_capacity)
    : name_(std::move(name)), spec_(spec),
      ssd_(name_ + ".ssd", functional_capacity),
      fpga_memory_(static_cast<std::size_t>(spec.fpga_dram))
{
}

void
Csd::installUpdater(std::unique_ptr<accel::UpdaterModule> updater)
{
    SI_REQUIRE(updater != nullptr, "null updater module");
    updater_ = std::move(updater);
    replaceModules();
}

void
Csd::installDecompressor(std::unique_ptr<accel::DecompressorModule> decomp)
{
    SI_REQUIRE(decomp != nullptr, "null decompressor module");
    decompressor_ = std::move(decomp);
    replaceModules();
}

void
Csd::replaceModules()
{
    // Re-synthesize: clear and place the active kernels so utilization
    // always reflects the installed device binary.
    resources_.clear();
    if (updater_)
        resources_.place(updater_->footprint());
    if (decompressor_)
        resources_.place(decompressor_->footprint());
}

} // namespace smartinf::csd
