/**
 * @file
 * A computational storage device (paper Fig 2): an NVMe SSD and a
 * lightweight FPGA joined by an internal PCIe switch, so SSD<->FPGA peer-to-
 * peer traffic never touches the host's shared interconnect. This class is
 * the *functional* composition (contents + device memory + kernels); the
 * timing layer sizes per-CSD links from CsdSpec.
 */
#ifndef SMARTINF_CSD_CSD_H
#define SMARTINF_CSD_CSD_H

#include <memory>
#include <string>

#include "accel/decompressor.h"
#include "accel/fpga_resources.h"
#include "accel/updater.h"
#include "csd/device_memory.h"
#include "storage/block_device.h"

namespace smartinf::csd {

/** Timing/topology characteristics of one CSD. */
struct CsdSpec {
    storage::SsdSpec ssd;
    /** SSD<->FPGA path through the internal switch (PCIe Gen3 x4). */
    BytesPerSec internal_bandwidth;
    /** FPGA DDR4 capacity. */
    Bytes fpga_dram;
    /** Fixed latency of issuing one P2P pread/pwrite. */
    Seconds p2p_latency;

    /** A Samsung SmartSSD: 4 TB NVMe + KU15P with 4 GB DDR4. */
    static CsdSpec smartSsd();
};

/** One CSD instance: functional SSD contents + FPGA memory + kernels. */
class Csd
{
  public:
    /**
     * @param name diagnostic identifier ("csd0", ...)
     * @param spec timing/capacity characteristics
     * @param functional_capacity bytes to actually back in memory for the
     *        emulated SSD contents (experiments only touch what they use,
     *        so this is much smaller than spec.ssd.capacity)
     */
    Csd(std::string name, const CsdSpec &spec,
        std::size_t functional_capacity);

    /**
     * Install the updater kernel (the "device binary" of paper Fig 8).
     * Replaces any prior updater and re-places the resource model.
     */
    void installUpdater(std::unique_ptr<accel::UpdaterModule> updater);

    /** Install the decompressor kernel (SmartComp). */
    void
    installDecompressor(std::unique_ptr<accel::DecompressorModule> decomp);

    const std::string &name() const { return name_; }
    const CsdSpec &spec() const { return spec_; }

    storage::BlockDevice &ssd() { return ssd_; }
    const storage::BlockDevice &ssd() const { return ssd_; }

    DeviceMemory &fpgaMemory() { return fpga_memory_; }

    accel::UpdaterModule *updater() { return updater_.get(); }
    const accel::UpdaterModule *updater() const { return updater_.get(); }
    accel::DecompressorModule *decompressor() { return decompressor_.get(); }
    const accel::DecompressorModule *decompressor() const
    {
        return decompressor_.get();
    }

    const accel::FpgaResourceModel &resources() const { return resources_; }

  private:
    void replaceModules();

    std::string name_;
    CsdSpec spec_;
    storage::BlockDevice ssd_;
    DeviceMemory fpga_memory_;
    std::unique_ptr<accel::UpdaterModule> updater_;
    std::unique_ptr<accel::DecompressorModule> decompressor_;
    accel::FpgaResourceModel resources_;
};

} // namespace smartinf::csd

#endif // SMARTINF_CSD_CSD_H
