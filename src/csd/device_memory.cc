#include "csd/device_memory.h"

#include <algorithm>

#include "common/logging.h"

namespace smartinf::csd {

DeviceBuffer::DeviceBuffer(DeviceMemory *pool, std::size_t size,
                           std::string tag)
    : pool_(pool), data_(new uint8_t[size]()), size_(size),
      tag_(std::move(tag))
{
}

DeviceBuffer::DeviceBuffer(DeviceBuffer &&other) noexcept
    : pool_(other.pool_), data_(std::move(other.data_)), size_(other.size_),
      tag_(std::move(other.tag_))
{
    other.pool_ = nullptr;
    other.size_ = 0;
}

DeviceBuffer &
DeviceBuffer::operator=(DeviceBuffer &&other) noexcept
{
    if (this != &other) {
        release();
        pool_ = other.pool_;
        data_ = std::move(other.data_);
        size_ = other.size_;
        tag_ = std::move(other.tag_);
        other.pool_ = nullptr;
        other.size_ = 0;
    }
    return *this;
}

DeviceBuffer::~DeviceBuffer()
{
    release();
}

void
DeviceBuffer::release()
{
    if (pool_ != nullptr && data_ != nullptr) {
        pool_->free(size_);
        data_.reset();
        pool_ = nullptr;
        size_ = 0;
    }
}

DeviceBuffer
DeviceMemory::allocate(std::size_t bytes, const std::string &tag)
{
    if (allocated_ + bytes > capacity_) {
        fatal("FPGA device memory OOM allocating '", tag, "' (", bytes,
              " B): ", allocated_, " B of ", capacity_,
              " B already in use. The internal transfer handler exists to "
              "avoid exactly this (see Smart-Infinity paper, Section IV-B).");
    }
    allocated_ += bytes;
    peak_ = std::max(peak_, allocated_);
    return DeviceBuffer(this, bytes, tag);
}

bool
DeviceMemory::wouldFit(std::size_t bytes) const
{
    return allocated_ + bytes <= capacity_;
}

void
DeviceMemory::free(std::size_t bytes)
{
    SI_ASSERT(bytes <= allocated_, "device memory free underflow");
    allocated_ -= bytes;
}

} // namespace smartinf::csd
