/**
 * @file
 * Host-side wall-time profiler for the simulation core. Answers "where does
 * the *host* time of a run go" (the BENCH_*.json events/sec denominators),
 * as opposed to the TraceSink/CounterSampler which record *simulated* time.
 *
 * Design constraints:
 *  - Callable from the hottest loops (event dispatch, flow recompute), so
 *    the disabled path is one relaxed atomic load and no clock read.
 *  - No dependencies beyond the standard library: sim/ and net/ include
 *    this header even though the rest of obs/ sits above them (see
 *    DESIGN.md "Layering" — obs/profiler.h is common-level by design).
 *  - Sections may nest and re-enter (TaskGraph completion cascades launch
 *    further tasks); only the outermost frame of a section accumulates
 *    wall time, so a section's total is real elapsed time, not a
 *    multiple-counted sum.
 *
 * Not thread-safe by design: enable() is only meant for single-threaded
 * measurement runs (the perf harness runs with jobs=1). The enabled flag
 * itself is atomic so a stray reader on another thread sees a clean
 * false and records nothing.
 */
#ifndef SMARTINF_OBS_PROFILER_H
#define SMARTINF_OBS_PROFILER_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace smartinf::obs {

/** The fixed set of profiled subsystems (stable BENCH_*.json keys). */
enum class Section : int {
    EventDispatch,  ///< EventQueue::runNext — everything inside an event
    FlowRecompute,  ///< FlowNetwork mark+recompute (water-filling)
    FlowCallbacks,  ///< flow completion callbacks (downstream graph work)
    TaskComplete,   ///< TaskGraph completion cascades (dependent launches)
    SchedulerStep,  ///< serve::BatchScheduler step construction
    kCount
};

/** Stable snake_case name of a section (JSON keys, test assertions). */
const char *sectionName(Section s);

/**
 * Wall-time + event-count accumulator per Section, plus a handful of
 * subsystem activity counters that cost one increment and explain the
 * wall numbers (e.g. flows touched per recompute — the contention
 * component size — is what separates the training and serving event
 * rates).
 */
class Profiler
{
  public:
    /** The process-wide instance every probe reports to. */
    static Profiler &instance();

    /** Turn measurement on/off. Off: probes cost one atomic load. */
    void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Zero every accumulator (typically right after enable(true)). */
    void reset();

    /** Accumulated wall seconds of @p s (outermost frames only). */
    double seconds(Section s) const;
    /** Number of outermost entries into @p s. */
    uint64_t calls(Section s) const;

    /** @name Activity counters. Self-guarding: no-ops while disabled. @{ */
    void
    addFlowsTouched(uint64_t n)
    {
        if (enabled())
            flows_touched_ += n;
    }
    void
    addLinksTouched(uint64_t n)
    {
        if (enabled())
            links_touched_ += n;
    }
    void
    countTaskLaunch()
    {
        if (enabled())
            ++task_launches_;
    }
    void
    countFlowRetire()
    {
        if (enabled())
            ++flow_retires_;
    }
    uint64_t flowsTouched() const { return flows_touched_; }
    uint64_t linksTouched() const { return links_touched_; }
    uint64_t taskLaunches() const { return task_launches_; }
    uint64_t flowRetires() const { return flow_retires_; }
    /** @} */

    /**
     * RAII probe. Construct with the section; on destruction the elapsed
     * wall time lands in the profiler iff this frame was the outermost of
     * its section and the profiler was enabled at construction.
     */
    class Scoped
    {
      public:
        explicit Scoped(Section s) : section_(s)
        {
            if (instance().enabled()) {
                entered_ = true;
                outermost_ = instance().enter(section_, start_);
            }
        }
        ~Scoped()
        {
            if (entered_)
                instance().leave(section_, start_, outermost_);
        }
        Scoped(const Scoped &) = delete;
        Scoped &operator=(const Scoped &) = delete;

      private:
        bool entered_ = false;   ///< enter() ran; leave() must balance it
        bool outermost_ = false; ///< this frame owns the section's clock
        Section section_;
        std::chrono::steady_clock::time_point start_;
    };

  private:
    Profiler() = default;

    /** @return true when this is the outermost frame (records on leave). */
    bool enter(Section s, std::chrono::steady_clock::time_point &start);
    void leave(Section s, std::chrono::steady_clock::time_point start,
               bool outermost);

    struct Bucket {
        double seconds = 0.0;
        uint64_t calls = 0;
        int depth = 0; ///< live nesting depth; only depth 0->1 times
    };

    std::atomic<bool> enabled_{false};
    Bucket buckets_[static_cast<int>(Section::kCount)];
    uint64_t flows_touched_ = 0;
    uint64_t links_touched_ = 0;
    uint64_t task_launches_ = 0;
    uint64_t flow_retires_ = 0;
};

} // namespace smartinf::obs

#endif // SMARTINF_OBS_PROFILER_H
