#include "obs/trace_sink.h"

#include <cstdio>
#include <iomanip>
#include <ostream>

#include "common/logging.h"

namespace smartinf::obs {

namespace {

constexpr double kUsPerSecond = 1e6;

} // namespace

std::string
TraceSink::jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

uint32_t
TraceSink::process(const std::string &name)
{
    auto [it, inserted] =
        pid_by_name_.emplace(name, static_cast<uint32_t>(processes_.size()));
    if (inserted)
        processes_.push_back(TrackNames{name, {}});
    return it->second;
}

uint32_t
TraceSink::thread(uint32_t pid, const std::string &name)
{
    SI_ASSERT(pid < processes_.size(), "trace thread() on unknown pid");
    auto &threads = processes_[pid].threads;
    for (std::size_t i = 0; i < threads.size(); ++i)
        if (threads[i] == name)
            return static_cast<uint32_t>(i);
    threads.push_back(name);
    return static_cast<uint32_t>(threads.size() - 1);
}

void
TraceSink::durationBegin(uint32_t pid, uint32_t tid, const std::string &name,
                         Seconds t, std::string args_json)
{
    TraceEvent e;
    e.ph = 'B';
    e.ts_us = t * kUsPerSecond;
    e.pid = pid;
    e.tid = tid;
    e.name = name;
    e.args_json = std::move(args_json);
    events_.push_back(std::move(e));
}

void
TraceSink::durationEnd(uint32_t pid, uint32_t tid, Seconds t)
{
    TraceEvent e;
    e.ph = 'E';
    e.ts_us = t * kUsPerSecond;
    e.pid = pid;
    e.tid = tid;
    events_.push_back(std::move(e));
}

void
TraceSink::asyncBegin(uint32_t pid, const std::string &cat,
                      const std::string &name, uint64_t id, Seconds t,
                      std::string args_json)
{
    TraceEvent e;
    e.ph = 'b';
    e.ts_us = t * kUsPerSecond;
    e.pid = pid;
    e.id = id;
    e.has_id = true;
    e.name = name;
    e.cat = cat;
    e.args_json = std::move(args_json);
    events_.push_back(std::move(e));
}

void
TraceSink::asyncInstant(uint32_t pid, const std::string &cat,
                        const std::string &name, uint64_t id, Seconds t,
                        std::string args_json)
{
    TraceEvent e;
    e.ph = 'n';
    e.ts_us = t * kUsPerSecond;
    e.pid = pid;
    e.id = id;
    e.has_id = true;
    e.name = name;
    e.cat = cat;
    e.args_json = std::move(args_json);
    events_.push_back(std::move(e));
}

void
TraceSink::asyncEnd(uint32_t pid, const std::string &cat,
                    const std::string &name, uint64_t id, Seconds t,
                    std::string args_json)
{
    TraceEvent e;
    e.ph = 'e';
    e.ts_us = t * kUsPerSecond;
    e.pid = pid;
    e.id = id;
    e.has_id = true;
    e.name = name;
    e.cat = cat;
    e.args_json = std::move(args_json);
    events_.push_back(std::move(e));
}

void
TraceSink::instant(uint32_t pid, uint32_t tid, const std::string &name,
                   Seconds t, std::string args_json)
{
    TraceEvent e;
    e.ph = 'i';
    e.ts_us = t * kUsPerSecond;
    e.pid = pid;
    e.tid = tid;
    e.name = name;
    e.args_json = std::move(args_json);
    events_.push_back(std::move(e));
}

void
TraceSink::counter(uint32_t pid, const std::string &name, Seconds t,
                   std::string args_json)
{
    TraceEvent e;
    e.ph = 'C';
    e.ts_us = t * kUsPerSecond;
    e.pid = pid;
    e.name = name;
    e.args_json = std::move(args_json);
    events_.push_back(std::move(e));
}

void
TraceSink::append(const TraceSink &other)
{
    // Remap the other document's pids (and per-pid tids) through this
    // sink's name tables. Run labels are unique by construction, so every
    // remapped pid is fresh and tid indexes can be copied verbatim.
    std::vector<uint32_t> pid_map(other.processes_.size());
    for (std::size_t p = 0; p < other.processes_.size(); ++p) {
        const uint32_t pid = process(other.processes_[p].process);
        pid_map[p] = pid;
        for (const auto &thread_name : other.processes_[p].threads)
            thread(pid, thread_name);
    }
    events_.reserve(events_.size() + other.events_.size());
    for (TraceEvent e : other.events_) {
        e.pid = pid_map[e.pid];
        events_.push_back(std::move(e));
    }
}

void
TraceSink::write(std::ostream &os) const
{
    const auto flags = os.flags();
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",\n";
        first = false;
    };
    // Track-name metadata first: Perfetto uses it to label the groups.
    for (std::size_t p = 0; p < processes_.size(); ++p) {
        sep();
        os << R"({"ph": "M", "name": "process_name", "pid": )" << p
           << R"(, "tid": 0, "args": {"name": ")"
           << jsonEscape(processes_[p].process) << "\"}}";
        for (std::size_t t = 0; t < processes_[p].threads.size(); ++t) {
            sep();
            os << R"({"ph": "M", "name": "thread_name", "pid": )" << p
               << R"(, "tid": )" << t << R"(, "args": {"name": ")"
               << jsonEscape(processes_[p].threads[t]) << "\"}}";
        }
    }
    os << std::setprecision(3) << std::fixed;
    for (const TraceEvent &e : events_) {
        sep();
        os << R"({"ph": ")" << e.ph << R"(", "ts": )" << e.ts_us
           << R"(, "pid": )" << e.pid << R"(, "tid": )" << e.tid;
        if (e.dur_us >= 0.0)
            os << R"(, "dur": )" << e.dur_us;
        if (e.has_id)
            os << R"(, "id": )" << e.id;
        if (!e.name.empty())
            os << R"(, "name": ")" << jsonEscape(e.name) << '"';
        os << R"(, "cat": ")" << (e.cat.empty() ? "sim" : e.cat) << '"';
        if (!e.args_json.empty())
            os << R"(, "args": {)" << e.args_json << '}';
        os << '}';
    }
    os << "\n]}\n";
    os.flags(flags);
}

} // namespace smartinf::obs
