/**
 * @file
 * The observability umbrella that ties the passive recording pieces
 * (TraceSink, CounterSampler) to the simulation's observer hooks
 * (sim::SimObserver, net::FlowObserver) and to the serve layer's semantic
 * events. Strictly opt-in: nothing here runs unless the CLI installs an
 * Observation, and an installed Observation never feeds back into the
 * simulation (see the determinism contract in sim/observer.h and DESIGN.md
 * "Observability").
 *
 * Structure:
 *  - Observation is the process-wide session installed by `smartinf_bench
 *    --trace/--metrics`. It owns the merged trace document and counter
 *    series and hands out one RunObservation per engine run, labelled
 *    "r<k>: <engine> / <workload>" so runs of a sweep stay distinguishable.
 *  - RunObservation is the per-run recorder: Engine::run() creates it
 *    before build() and destroys it after the simulator drains. It
 *    registers itself as the run's SimObserver + FlowObserver, exposes the
 *    serve-facing hooks (scheduler steps, queue depth, KV occupancy) via
 *    SimContext::obs, and — for the run's duration — installs a
 *    thread-local log clock so inform()/warn() lines carry [t=...s]
 *    sim-time prefixes.
 *
 * Deliberately NOT a RunSpec axis: observation cannot change any simulated
 * result (pinned by tests), so it must never enter the result hash — a
 * traced run and an untraced run are the same experiment.
 */
#ifndef SMARTINF_OBS_OBSERVATION_H
#define SMARTINF_OBS_OBSERVATION_H

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "net/flow_network.h"
#include "obs/counter_sampler.h"
#include "obs/trace_sink.h"
#include "sim/observer.h"

namespace smartinf::obs {

/** What an Observation records; empty paths disable that output. */
struct ObservationOptions {
    std::string trace_path;   ///< Chrome-trace JSON out; "" = no timeline
    std::string metrics_path; ///< counter CSV out; "" = no time-series
    Seconds metrics_window = 1.0; ///< counter window width (sim seconds)
    /**
     * Minimum simulated-time spacing between successive *timeline* samples
     * of one high-churn counter (link utilization, per-flow rate). Every
     * max-min recompute re-reports the whole contention component, so an
     * unthrottled timeline is O(events × component size); throttling bounds
     * it to O(duration / dt) per counter, with sampled-counter semantics
     * (sub-quantum churn aliases). The metrics CSV sees every exact sample
     * regardless.
     */
    Seconds trace_sample_dt = 0.05;
};

class Observation;

/**
 * Per-run recorder (one engine run = one Perfetto process group). Created
 * by Observation::beginRun(); records into its own private sink/sampler so
 * concurrent runs never contend; merged back under the session lock by
 * Observation::finishRun().
 */
class RunObservation final : public sim::SimObserver,
                             public net::FlowObserver
{
  public:
    RunObservation(std::string label, const ObservationOptions &opts,
                   sim::Simulator &sim, net::FlowNetwork &net);
    ~RunObservation() override;

    RunObservation(const RunObservation &) = delete;
    RunObservation &operator=(const RunObservation &) = delete;

    /** @name sim::SimObserver (task graph + resources). @{ */
    void taskStarted(std::size_t id, const sim::TaskLabel &label,
                     Seconds now) override;
    void taskFinished(std::size_t id, const sim::TaskLabel &label,
                      Seconds now) override;
    void taskAbandoned(std::size_t id, const sim::TaskLabel &label,
                       Seconds now) override;
    void jobStarted(const sim::Resource &resource, double work,
                    Seconds now) override;
    void jobFinished(const sim::Resource &resource, double work,
                     Seconds now) override;
    /** @} */

    /** @name net::FlowObserver (flow lifecycle + link rates). @{ */
    void flowStarted(net::FlowId id, const net::Route &route, Bytes bytes,
                     Seconds now) override;
    void flowRateChanged(net::FlowId id, BytesPerSec rate,
                         Seconds now) override;
    void linkRateChanged(const net::Link &link, BytesPerSec aggregate,
                         Seconds now) override;
    void flowFinished(net::FlowId id, Seconds now) override;
    void flowCancelled(net::FlowId id, Seconds now) override;
    /** @} */

    /**
     * @name Fault/recovery hooks (called through SimContext::obs).
     * One counter track ("faults") accumulates injections; each injection
     * and each recovery action lands as a trace instant on the fault track.
     * @{
     */
    void faultInjected(const std::string &kind, int node, Seconds now);
    void recoveryAction(const std::string &action, int node, Seconds now);
    /** @} */

    /**
     * @name Serve-layer hooks (called through SimContext::obs).
     * Scalar-only signatures keep obs/ below serve/ in the layering.
     * @{
     */
    void schedulerStepBegun(int node, int step, int batch_size,
                            int prefills, Seconds now);
    void schedulerStepFinished(int node, Seconds now);
    void queueDepth(int node, int depth, Seconds now);
    void runningBatch(int node, int size, Seconds now);
    void requestRetired(int node, int request_id, Seconds arrival,
                        Seconds finish, Seconds now);
    /** KV bytes resident per tier after a step's working set is laid out;
     *  @p scope is the builder prefix ("" or "n<k>."). */
    void kvOccupancy(const std::string &scope, Bytes hbm, Bytes host,
                     Bytes csd, Seconds now);
    /** Paged KV allocator gauges (per scheduler step, paged layout only):
     *  live/free page slots per tier, span/used fragmentation ratio, the
     *  block-table metadata footprint, and the prefix-cache hit rate. */
    void kvAllocator(const std::string &scope, int used_hbm, int free_hbm,
                     int used_host, int free_host, int used_csd,
                     double fragmentation, Bytes block_table_bytes,
                     double prefix_hit_rate, Seconds now);
    /** @} */

    /**
     * @name Control-plane hooks (called through SimContext::obs).
     * One counter track ("ctrl") accumulates replica-set state; each
     * control decision (reject / defer / preempt / scale-up / scale-down /
     * warmup-done / retire-replica) lands as a trace instant on the ctrl
     * track and as a `ctrl.<kind>` metric sample.
     * @{
     */
    void ctrlDecision(const std::string &kind, int node, Seconds now);
    /** Replica-set composition after a control-plane transition or tick. */
    void ctrlReplicas(int active, int warming, int draining, Seconds now);
    /** Per-retirement SLO verdict; the windowed mean of the 0/1 samples in
     *  the metrics CSV (`slo_attained.n<k>`) is the per-replica windowed
     *  attainment rate. */
    void sloAttainment(int node, bool attained, Seconds now);
    /** @} */

    const std::string &label() const { return label_; }
    const TraceSink &trace() const { return trace_; }
    const CounterSampler &counters() const { return counters_; }

  private:
    /** Last emitted state of one throttled timeline series. */
    struct Throttle {
        std::string args;     ///< rendered args of the last emission
        Seconds t = 0.0;      ///< time of the last emission
        bool emitted = false; ///< false until the first sample
    };

    /** Intern a per-resource / per-scheduler duration track. */
    uint32_t track(const std::string &name);
    /**
     * Emit a trace counter iff its rendered args changed AND at least
     * trace_sample_dt passed since the series' last emission — sampled-
     * counter semantics: fast 0<->busy toggling (a media link fetching one
     * layer per step) aliases to ~1/dt points, and the displayed value can
     * lag the true one by up to one quantum. The metrics sampler still
     * sees every exact sample; this throttle only bounds *timeline*
     * volume (see ObservationOptions).
     */
    void traceCounter(const std::string &name, Seconds t,
                      std::string args_json);
    void metric(const std::string &name, Seconds t, double value);

    std::string label_;
    sim::Simulator &sim_;
    net::FlowNetwork &net_;

    TraceSink trace_;
    CounterSampler counters_;
    uint32_t pid_ = 0;
    Seconds trace_sample_dt_;

    int faults_seen_ = 0; ///< running count behind the "faults" counter

    std::unordered_map<std::string, uint32_t> track_by_name_;
    std::unordered_map<net::FlowId, std::string> flow_names_;
    std::unordered_map<net::FlowId, Throttle> flow_rate_throttle_;
    std::unordered_map<std::string, Throttle> counter_throttle_;

    std::function<Seconds()> prev_log_clock_;
};

/**
 * Process-wide observability session (see file comment). Install one with
 * install(); Engine::run() picks it up via current(). Thread-safe across
 * concurrent engine runs: per-run state is private to each
 * RunObservation, and begin/finish merge under a mutex.
 */
class Observation
{
  public:
    explicit Observation(ObservationOptions options);
    ~Observation();

    Observation(const Observation &) = delete;
    Observation &operator=(const Observation &) = delete;

    /** The installed session, or nullptr (the common case). */
    static Observation *current();
    /** Make this the process-wide session (pass nullptr via uninstall). */
    void install();
    void uninstall();

    const ObservationOptions &options() const { return options_; }

    /** Start recording one engine run; @p label is "<engine> / <workload>"
     *  (the session prepends a unique "r<k>: " run tag). */
    std::unique_ptr<RunObservation> beginRun(const std::string &label,
                                             sim::Simulator &sim,
                                             net::FlowNetwork &net);
    /** Merge a finished run's recordings into the session document. */
    void finishRun(std::unique_ptr<RunObservation> run);

    /** Number of runs recorded so far. */
    int runsRecorded() const { return runs_finished_; }

    /** Write the configured outputs (trace JSON and/or metrics CSV).
     *  @return false if any configured file could not be opened. */
    bool writeOutputs() const;

    /** @name Direct access for tests. @{ */
    const TraceSink &trace() const { return trace_; }
    const CounterSampler &counters() const { return counters_; }
    /** @} */

  private:
    ObservationOptions options_;
    mutable std::mutex mutex_;
    int runs_started_ = 0;
    int runs_finished_ = 0;
    TraceSink trace_;
    CounterSampler counters_;
};

} // namespace smartinf::obs

#endif // SMARTINF_OBS_OBSERVATION_H
