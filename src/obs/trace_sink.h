/**
 * @file
 * Chrome-trace / Perfetto-compatible timeline sink. Records simulation
 * events (task lifetimes, resource occupancy, flow lifetimes, scheduler
 * steps, counters) and serializes them as the Trace Event Format JSON that
 * chrome://tracing and ui.perfetto.dev load directly:
 * `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
 *
 * Mapping conventions (see docs/OBSERVABILITY.md for the walkthrough):
 *  - pid = one engine run (process_name metadata carries the run label);
 *    a traced sweep shows each run as its own process group.
 *  - tid = one serial track within a run: a resource ("n3.gpu"), a
 *    scheduler ("n0.sched"), or the run's task/flow home track. Resource
 *    occupancy and scheduler steps are B/E duration events (strictly
 *    nested because the underlying resources are serial).
 *  - Tasks and flows are *async* events ('b'/'n'/'e' with an id): they
 *    overlap arbitrarily, and Perfetto lays each id out on its own async
 *    row. Flow rate changes are 'n' (async instant) events carrying the
 *    new rate in args.
 *  - Counters (queue depth, KV occupancy, link rates) are 'C' events.
 *
 * Timestamps are simulated seconds scaled to microseconds (the format's
 * unit). The sink is a passive accumulator: recording never touches the
 * simulator. Not thread-safe; one sink belongs to one run (the
 * Observation umbrella merges per-run sinks under a lock at run end).
 */
#ifndef SMARTINF_OBS_TRACE_SINK_H
#define SMARTINF_OBS_TRACE_SINK_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.h"

namespace smartinf::obs {

/** One recorded trace event (pre-rendered args; see file comment). */
struct TraceEvent {
    char ph = 'i';        ///< Trace Event Format phase
    double ts_us = 0.0;   ///< simulated time, microseconds
    double dur_us = -1.0; ///< 'X' only; <0 = absent
    uint32_t pid = 0;
    uint32_t tid = 0;
    uint64_t id = 0;      ///< async id ('b'/'n'/'e'); 0 = absent
    bool has_id = false;
    std::string name;
    std::string cat;       ///< category; empty = "sim"
    std::string args_json; ///< rendered JSON object body, "" = no args
};

/** Accumulates trace events and writes Trace Event Format JSON. */
class TraceSink
{
  public:
    /** Register (or look up) a process group named @p name. */
    uint32_t process(const std::string &name);
    /** Register (or look up) thread track @p name under @p pid. */
    uint32_t thread(uint32_t pid, const std::string &name);

    /** @name Event recording. Timestamps are simulated seconds. @{ */
    void durationBegin(uint32_t pid, uint32_t tid, const std::string &name,
                       Seconds t, std::string args_json = {});
    void durationEnd(uint32_t pid, uint32_t tid, Seconds t);
    void asyncBegin(uint32_t pid, const std::string &cat,
                    const std::string &name, uint64_t id, Seconds t,
                    std::string args_json = {});
    void asyncInstant(uint32_t pid, const std::string &cat,
                      const std::string &name, uint64_t id, Seconds t,
                      std::string args_json = {});
    void asyncEnd(uint32_t pid, const std::string &cat,
                  const std::string &name, uint64_t id, Seconds t,
                  std::string args_json = {});
    void instant(uint32_t pid, uint32_t tid, const std::string &name,
                 Seconds t, std::string args_json = {});
    /** Counter track @p name; @p args_json carries the series values,
     *  e.g. R"("depth": 3)" (object body without braces). */
    void counter(uint32_t pid, const std::string &name, Seconds t,
                 std::string args_json);
    /** @} */

    std::size_t eventCount() const { return events_.size(); }
    const std::vector<TraceEvent> &events() const { return events_; }

    /**
     * Merge a per-run sink into this document, remapping the other sink's
     * pids through this sink's process-name table (the Observation
     * umbrella labels runs uniquely, so remapped pids never collide).
     */
    void append(const TraceSink &other);

    /** Serialize the full document (metadata + events). */
    void write(std::ostream &os) const;

    /** Escape a string for direct embedding inside JSON quotes. */
    static std::string jsonEscape(const std::string &s);

  private:
    /** Per-process track names ("process_name"/"thread_name" metadata). */
    struct TrackNames {
        std::string process;
        std::vector<std::string> threads; ///< indexed by tid
    };

    std::vector<TraceEvent> events_;
    std::unordered_map<std::string, uint32_t> pid_by_name_;
    std::vector<TrackNames> processes_; ///< indexed by pid
};

} // namespace smartinf::obs

#endif // SMARTINF_OBS_TRACE_SINK_H
