/**
 * @file
 * Windowed counter time-series with *mergeable* aggregation — the seed of
 * the ROADMAP's streaming-metrics requirement. Sources push (time, value)
 * samples for named counters (link utilization, queue depth, in-flight
 * batch size, KV occupancy, outstanding events); the sampler folds them
 * into fixed-width time windows keeping only {count, min, max, sum, last}
 * per window, so memory is O(duration / window) per counter no matter how
 * many raw samples land — a 10^6-request trace aggregates instead of
 * accumulating per-sample vectors.
 *
 * The per-window statistic is a commutative semigroup: merging two
 * samplers window-by-window (merge()) gives exactly the sampler that
 * would have seen all samples, which is what lets per-run (and one day
 * per-shard) series combine without a global collection point. "last"
 * merges by latest sample time, so it needs last_t alongside.
 *
 * Passive and simulation-free: record() never touches the simulator;
 * windows are keyed by sample time, not wall clock.
 */
#ifndef SMARTINF_OBS_COUNTER_SAMPLER_H
#define SMARTINF_OBS_COUNTER_SAMPLER_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.h"

namespace smartinf::obs {

/** Interned counter handle (stable within one sampler). */
using CounterId = uint32_t;

/** Windowed, mergeable counter time-series (see file comment). */
class CounterSampler
{
  public:
    /** Mergeable aggregate of one counter over one window. */
    struct Window {
        int64_t index = 0; ///< window start = index * window_seconds
        uint64_t count = 0;
        double min = 0.0;
        double max = 0.0;
        double sum = 0.0;
        double last = 0.0;   ///< value of the latest sample
        Seconds last_t = 0.0; ///< time of the latest sample (merge key)

        double mean() const { return count > 0 ? sum / count : 0.0; }
    };

    /** One counter's name plus its (index-ascending) window list. */
    struct Series {
        std::string name;
        std::vector<Window> windows;
    };

    /** @param window_seconds window width; must be > 0. */
    explicit CounterSampler(Seconds window_seconds);

    /** Intern @p name; stable id for the sampler's lifetime. */
    CounterId counter(const std::string &name);

    /** Fold one sample into @p id's window at @p t. Samples may arrive in
     *  any time order (simulation sources are monotonic; merged or
     *  replayed sources need not be). */
    void record(CounterId id, Seconds t, double value);

    /** Name + record in one call (cold paths / tests). */
    void record(const std::string &name, Seconds t, double value);

    Seconds windowSeconds() const { return window_; }
    const std::vector<Series> &series() const { return series_; }
    /** Series for @p name, or nullptr. */
    const Series *find(const std::string &name) const;

    /** Fold @p other into this sampler. Requires equal window widths.
     *  Counter names merge by name; windows merge by index. */
    void merge(const CounterSampler &other);

    /** CSV: counter,window_start_s,count,min,max,mean,last (header row
     *  first; rows grouped by counter, windows ascending). */
    void writeCsv(std::ostream &os) const;

  private:
    void fold(Series &series, const Window &w);

    Seconds window_;
    std::vector<Series> series_;
    std::unordered_map<std::string, CounterId> id_by_name_;
};

} // namespace smartinf::obs

#endif // SMARTINF_OBS_COUNTER_SAMPLER_H
