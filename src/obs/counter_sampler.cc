#include "obs/counter_sampler.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "common/logging.h"

namespace smartinf::obs {

CounterSampler::CounterSampler(Seconds window_seconds)
    : window_(window_seconds)
{
    SI_REQUIRE(window_seconds > 0.0, "counter window must be positive");
}

CounterId
CounterSampler::counter(const std::string &name)
{
    auto [it, inserted] =
        id_by_name_.emplace(name, static_cast<CounterId>(series_.size()));
    if (inserted)
        series_.push_back(Series{name, {}});
    return it->second;
}

void
CounterSampler::fold(Series &series, const Window &w)
{
    // Samples are overwhelmingly time-ordered (simulation time is
    // monotonic), so the common case appends to or updates the trailing
    // window; the general path (merge of arbitrary series) binary-searches
    // the index-sorted window list.
    auto &windows = series.windows;
    Window *target = nullptr;
    if (!windows.empty() && windows.back().index == w.index) {
        target = &windows.back();
    } else if (windows.empty() || windows.back().index < w.index) {
        windows.push_back(w);
        return;
    } else {
        const auto it = std::lower_bound(
            windows.begin(), windows.end(), w.index,
            [](const Window &a, int64_t idx) { return a.index < idx; });
        if (it == windows.end() || it->index != w.index) {
            windows.insert(it, w);
            return;
        }
        target = &*it;
    }
    target->count += w.count;
    target->min = std::min(target->min, w.min);
    target->max = std::max(target->max, w.max);
    target->sum += w.sum;
    if (w.last_t >= target->last_t) {
        target->last = w.last;
        target->last_t = w.last_t;
    }
}

void
CounterSampler::record(CounterId id, Seconds t, double value)
{
    SI_ASSERT(id < series_.size(), "record() on unknown counter id");
    Window w;
    w.index = static_cast<int64_t>(std::floor(t / window_));
    w.count = 1;
    w.min = w.max = w.sum = w.last = value;
    w.last_t = t;
    fold(series_[id], w);
}

void
CounterSampler::record(const std::string &name, Seconds t, double value)
{
    record(counter(name), t, value);
}

const CounterSampler::Series *
CounterSampler::find(const std::string &name) const
{
    const auto it = id_by_name_.find(name);
    return it == id_by_name_.end() ? nullptr : &series_[it->second];
}

void
CounterSampler::merge(const CounterSampler &other)
{
    SI_REQUIRE(window_ == other.window_,
               "cannot merge samplers with different window widths");
    for (const Series &theirs : other.series_) {
        Series &ours = series_[counter(theirs.name)];
        for (const Window &w : theirs.windows)
            fold(ours, w);
    }
}

void
CounterSampler::writeCsv(std::ostream &os) const
{
    const auto flags = os.flags();
    os << "counter,window_start_s,count,min,max,mean,last\n";
    os << std::setprecision(6) << std::fixed;
    for (const Series &s : series_) {
        for (const Window &w : s.windows) {
            os << s.name << ','
               << static_cast<double>(w.index) * window_ << ',' << w.count
               << ',' << w.min << ',' << w.max << ',' << w.mean() << ','
               << w.last << '\n';
        }
    }
    os.flags(flags);
}

} // namespace smartinf::obs
