#include "obs/profiler.h"

namespace smartinf::obs {

const char *
sectionName(Section s)
{
    switch (s) {
      case Section::EventDispatch: return "event_dispatch";
      case Section::FlowRecompute: return "flow_recompute";
      case Section::FlowCallbacks: return "flow_callbacks";
      case Section::TaskComplete: return "task_complete";
      case Section::SchedulerStep: return "scheduler_step";
      case Section::kCount: break;
    }
    return "?";
}

Profiler &
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

void
Profiler::reset()
{
    for (auto &bucket : buckets_)
        bucket = Bucket{};
    flows_touched_ = 0;
    links_touched_ = 0;
    task_launches_ = 0;
    flow_retires_ = 0;
}

double
Profiler::seconds(Section s) const
{
    return buckets_[static_cast<int>(s)].seconds;
}

uint64_t
Profiler::calls(Section s) const
{
    return buckets_[static_cast<int>(s)].calls;
}

bool
Profiler::enter(Section s, std::chrono::steady_clock::time_point &start)
{
    Bucket &bucket = buckets_[static_cast<int>(s)];
    if (bucket.depth++ > 0)
        return false; // nested frame: the outermost one owns the time
    start = std::chrono::steady_clock::now();
    return true;
}

void
Profiler::leave(Section s, std::chrono::steady_clock::time_point start,
                bool outermost)
{
    Bucket &bucket = buckets_[static_cast<int>(s)];
    --bucket.depth;
    if (!outermost)
        return;
    bucket.seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    ++bucket.calls;
}

} // namespace smartinf::obs
