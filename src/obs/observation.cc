#include "obs/observation.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <utility>

#include "common/logging.h"
#include "sim/resource.h"
#include "sim/task_graph.h"

namespace smartinf::obs {

namespace {

std::atomic<Observation *> g_current{nullptr};

/** Compact numeric literal for rendered args ("%.10g" round-trips the
 *  values the timeline cares about without bloating the JSON). */
std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

/**
 * Low-resolution numeric literal for *high-churn* trace values (link
 * utilization, per-flow rates). Every max-min recompute re-reports every
 * value in the touched component, so full-precision rendering would defeat
 * the transition dedupe and multiply the trace size by the component size.
 * Three significant digits keep the timeline readable while collapsing
 * sub-0.1% churn; the metrics CSV keeps exact values.
 */
std::string
coarse(double v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%.3g", v);
    return buf;
}

std::string
routeName(const net::Route &route)
{
    std::string out;
    for (const net::Link *link : route) {
        if (!out.empty())
            out += '>';
        out += link->name();
    }
    return out.empty() ? std::string("(empty)") : out;
}

} // namespace

// ---------------------------------------------------------------------------
// RunObservation

RunObservation::RunObservation(std::string label,
                               const ObservationOptions &opts,
                               sim::Simulator &sim, net::FlowNetwork &net)
    : label_(std::move(label)), sim_(sim), net_(net),
      counters_(opts.metrics_window), trace_sample_dt_(opts.trace_sample_dt)
{
    pid_ = trace_.process(label_);
    SI_ASSERT(sim_.observer() == nullptr && net_.observer() == nullptr,
              "run already observed");
    sim_.setObserver(this);
    net_.setObserver(this);
    prev_log_clock_ = exchangeLogClock([this] { return sim_.now(); });
}

RunObservation::~RunObservation()
{
    exchangeLogClock(std::move(prev_log_clock_));
    if (sim_.observer() == this)
        sim_.setObserver(nullptr);
    if (net_.observer() == this)
        net_.setObserver(nullptr);
}

uint32_t
RunObservation::track(const std::string &name)
{
    auto it = track_by_name_.find(name);
    if (it != track_by_name_.end())
        return it->second;
    const uint32_t tid = trace_.thread(pid_, name);
    track_by_name_.emplace(name, tid);
    return tid;
}

void
RunObservation::traceCounter(const std::string &name, Seconds t,
                             std::string args_json)
{
    Throttle &th = counter_throttle_[name];
    if (th.emitted) {
        if (th.args == args_json)
            return; // no visible change
        if (t - th.t < trace_sample_dt_)
            return; // churn inside the sampling quantum
    }
    th.args = args_json;
    th.t = t;
    th.emitted = true;
    trace_.counter(pid_, name, t, std::move(args_json));
}

void
RunObservation::metric(const std::string &name, Seconds t, double value)
{
    counters_.record(label_ + ": " + name, t, value);
}

void
RunObservation::taskStarted(std::size_t id, const sim::TaskLabel &label,
                            Seconds now)
{
    trace_.asyncBegin(pid_, "task", label.str(), id, now);
    metric("events.outstanding", now,
           static_cast<double>(sim_.queue().size()));
}

void
RunObservation::taskFinished(std::size_t id, const sim::TaskLabel &label,
                             Seconds now)
{
    trace_.asyncEnd(pid_, "task", label.str(), id, now);
}

void
RunObservation::taskAbandoned(std::size_t id, const sim::TaskLabel &label,
                              Seconds now)
{
    // Close the slice opened by taskStarted so the timeline stays
    // well-formed; the "revoked" arg distinguishes it from a completion.
    trace_.asyncInstant(pid_, "task", label.str(), id, now,
                        "\"revoked\": true");
    trace_.asyncEnd(pid_, "task", label.str(), id, now);
}

void
RunObservation::jobStarted(const sim::Resource &resource, double work,
                           Seconds now)
{
    trace_.durationBegin(pid_, track(resource.name()), "job", now,
                         "\"work\": " + num(work));
}

void
RunObservation::jobFinished(const sim::Resource &resource, double work,
                            Seconds now)
{
    (void)work;
    trace_.durationEnd(pid_, track(resource.name()), now);
}

void
RunObservation::flowStarted(net::FlowId id, const net::Route &route,
                            Bytes bytes, Seconds now)
{
    std::string name = routeName(route);
    trace_.asyncBegin(pid_, "flow", name, id, now,
                      "\"bytes\": " + num(bytes));
    flow_names_.emplace(id, std::move(name));
    metric("flows.active", now, static_cast<double>(net_.activeFlows()));
}

void
RunObservation::flowRateChanged(net::FlowId id, BytesPerSec rate,
                                Seconds now)
{
    // Recomputes re-report every flow of the touched component; the
    // timeline needs the *first* rate and subsequent transitions, throttled
    // to the sampling quantum — neighbouring arrivals shift every
    // component member's exact rate, which would otherwise make the
    // instant stream O(events × component size).
    std::string rendered = "\"rate_Bps\": " + coarse(rate);
    Throttle &th = flow_rate_throttle_[id];
    if (th.emitted) {
        if (th.args == rendered)
            return;
        if (now - th.t < trace_sample_dt_)
            return;
    }
    th.args = rendered;
    th.t = now;
    th.emitted = true;
    auto name = flow_names_.find(id);
    trace_.asyncInstant(pid_, "flow",
                        name != flow_names_.end() ? name->second : "flow",
                        id, now, std::move(rendered));
}

void
RunObservation::linkRateChanged(const net::Link &link, BytesPerSec aggregate,
                                Seconds now)
{
    const double util =
        link.capacity() > 0.0 ? aggregate / link.capacity() : 0.0;
    traceCounter("link " + link.name(), now, "\"util\": " + coarse(util));
    metric("link." + link.name() + ".util", now, util);
}

void
RunObservation::flowFinished(net::FlowId id, Seconds now)
{
    auto name = flow_names_.find(id);
    trace_.asyncEnd(pid_, "flow",
                    name != flow_names_.end() ? name->second : "flow", id,
                    now);
    if (name != flow_names_.end())
        flow_names_.erase(name);
    flow_rate_throttle_.erase(id);
    // activeFlows() still counts this flow (we fire before its slot
    // retires), so subtract the one that just finished.
    metric("flows.active", now,
           static_cast<double>(net_.activeFlows()) - 1.0);
}

void
RunObservation::flowCancelled(net::FlowId id, Seconds now)
{
    // Latency-phase cancellations never opened a slice (flowStarted only
    // fires at bulk entry), so only close what was begun.
    auto name = flow_names_.find(id);
    if (name != flow_names_.end()) {
        trace_.asyncEnd(pid_, "flow", name->second, id, now);
        flow_names_.erase(name);
    }
    flow_rate_throttle_.erase(id);
    metric("flows.cancelled", now, 1.0);
}

void
RunObservation::faultInjected(const std::string &kind, int node, Seconds now)
{
    ++faults_seen_;
    trace_.instant(pid_, track("faults"),
                   kind + " n" + std::to_string(node), now,
                   "\"kind\": \"" + kind + "\", \"node\": " +
                       std::to_string(node));
    traceCounter("faults", now,
                 "\"injected\": " + std::to_string(faults_seen_));
    metric("faults." + kind, now, 1.0);
}

void
RunObservation::recoveryAction(const std::string &action, int node,
                               Seconds now)
{
    trace_.instant(pid_, track("faults"),
                   action + " n" + std::to_string(node), now,
                   "\"action\": \"" + action + "\", \"node\": " +
                       std::to_string(node));
    metric("recovery." + action, now, 1.0);
}

void
RunObservation::schedulerStepBegun(int node, int step, int batch_size,
                                   int prefills, Seconds now)
{
    trace_.durationBegin(pid_, track("n" + std::to_string(node) + ".sched"),
                         "step " + std::to_string(step), now,
                         "\"batch\": " + std::to_string(batch_size) +
                             ", \"prefills\": " + std::to_string(prefills));
    metric("batch.n" + std::to_string(node), now,
           static_cast<double>(batch_size));
}

void
RunObservation::schedulerStepFinished(int node, Seconds now)
{
    trace_.durationEnd(pid_, track("n" + std::to_string(node) + ".sched"),
                       now);
}

void
RunObservation::queueDepth(int node, int depth, Seconds now)
{
    const std::string tag = "n" + std::to_string(node);
    traceCounter("queue " + tag, now,
                 "\"depth\": " + std::to_string(depth));
    metric("queue_depth." + tag, now, static_cast<double>(depth));
}

void
RunObservation::runningBatch(int node, int size, Seconds now)
{
    const std::string tag = "n" + std::to_string(node);
    traceCounter("batch " + tag, now, "\"size\": " + std::to_string(size));
    metric("batch." + tag, now, static_cast<double>(size));
}

void
RunObservation::requestRetired(int node, int request_id, Seconds arrival,
                               Seconds finish, Seconds now)
{
    trace_.instant(pid_, track("n" + std::to_string(node) + ".sched"),
                   "retire r" + std::to_string(request_id), now,
                   "\"latency_s\": " + num(finish - arrival));
    metric("request_latency_s.n" + std::to_string(node), now,
           finish - arrival);
}

void
RunObservation::kvOccupancy(const std::string &scope, Bytes hbm, Bytes host,
                            Bytes csd, Seconds now)
{
    const std::string name = scope.empty() ? "kv" : "kv " + scope;
    traceCounter(name, now,
                 "\"hbm_MB\": " + coarse(hbm / 1e6) +
                     ", \"host_MB\": " + coarse(host / 1e6) +
                     ", \"csd_MB\": " + coarse(csd / 1e6));
    metric(name + ".hbm_bytes", now, hbm);
    metric(name + ".host_bytes", now, host);
    metric(name + ".csd_bytes", now, csd);
}

void
RunObservation::kvAllocator(const std::string &scope, int used_hbm,
                            int free_hbm, int used_host, int free_host,
                            int used_csd, double fragmentation,
                            Bytes block_table_bytes, double prefix_hit_rate,
                            Seconds now)
{
    const std::string name =
        scope.empty() ? "kvalloc" : "kvalloc " + scope;
    traceCounter(name, now,
                 "\"hbm_used\": " + std::to_string(used_hbm) +
                     ", \"hbm_free\": " + std::to_string(free_hbm) +
                     ", \"host_used\": " + std::to_string(used_host) +
                     ", \"csd_used\": " + std::to_string(used_csd) +
                     ", \"frag\": " + coarse(fragmentation) +
                     ", \"hit_rate\": " + coarse(prefix_hit_rate));
    metric(name + ".hbm_used_blocks", now, static_cast<double>(used_hbm));
    metric(name + ".hbm_free_blocks", now, static_cast<double>(free_hbm));
    metric(name + ".host_used_blocks", now, static_cast<double>(used_host));
    metric(name + ".host_free_blocks", now, static_cast<double>(free_host));
    metric(name + ".csd_used_blocks", now, static_cast<double>(used_csd));
    metric(name + ".fragmentation", now, fragmentation);
    metric(name + ".block_table_bytes", now, block_table_bytes);
    metric(name + ".prefix_hit_rate", now, prefix_hit_rate);
}

void
RunObservation::ctrlDecision(const std::string &kind, int node, Seconds now)
{
    trace_.instant(pid_, track("ctrl"),
                   kind + " n" + std::to_string(node), now,
                   "\"kind\": \"" + kind + "\", \"node\": " +
                       std::to_string(node));
    metric("ctrl." + kind, now, 1.0);
}

void
RunObservation::ctrlReplicas(int active, int warming, int draining,
                             Seconds now)
{
    traceCounter("ctrl replicas", now,
                 "\"active\": " + std::to_string(active) +
                     ", \"warming\": " + std::to_string(warming) +
                     ", \"draining\": " + std::to_string(draining));
    metric("ctrl.replicas_active", now, static_cast<double>(active));
    metric("ctrl.replicas_warming", now, static_cast<double>(warming));
    metric("ctrl.replicas_draining", now, static_cast<double>(draining));
}

void
RunObservation::sloAttainment(int node, bool attained, Seconds now)
{
    // 0/1 samples: the CounterSampler's windowed mean is the windowed
    // attainment rate, per replica — the satellite aggregation the whole-
    // run record vectors cannot provide incrementally.
    metric("slo_attained.n" + std::to_string(node), now,
           attained ? 1.0 : 0.0);
}

// ---------------------------------------------------------------------------
// Observation

Observation::Observation(ObservationOptions options)
    : options_(std::move(options)), counters_(options_.metrics_window)
{
    SI_REQUIRE(options_.metrics_window > 0.0,
               "metrics window must be positive");
}

Observation::~Observation()
{
    uninstall();
}

Observation *
Observation::current()
{
    return g_current.load(std::memory_order_acquire);
}

void
Observation::install()
{
    Observation *expected = nullptr;
    const bool won = g_current.compare_exchange_strong(
        expected, this, std::memory_order_release);
    SI_REQUIRE(won || expected == this,
               "another Observation is already installed");
}

void
Observation::uninstall()
{
    Observation *expected = this;
    g_current.compare_exchange_strong(expected, nullptr,
                                      std::memory_order_release);
}

std::unique_ptr<RunObservation>
Observation::beginRun(const std::string &label, sim::Simulator &sim,
                      net::FlowNetwork &net)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string tagged =
        "r" + std::to_string(runs_started_++) + ": " + label;
    return std::make_unique<RunObservation>(tagged, options_, sim, net);
}

void
Observation::finishRun(std::unique_ptr<RunObservation> run)
{
    SI_ASSERT(run != nullptr, "finishRun without a run");
    std::lock_guard<std::mutex> lock(mutex_);
    trace_.append(run->trace());
    counters_.merge(run->counters());
    ++runs_finished_;
    // run's destructor detaches it from the simulator/network here, while
    // both are still alive (Engine::run finishes before ctx dies).
}

bool
Observation::writeOutputs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    bool ok = true;
    if (!options_.trace_path.empty()) {
        std::ofstream os(options_.trace_path);
        if (os)
            trace_.write(os);
        else
            ok = false;
    }
    if (!options_.metrics_path.empty()) {
        std::ofstream os(options_.metrics_path);
        if (os)
            counters_.writeCsv(os);
        else
            ok = false;
    }
    return ok;
}

} // namespace smartinf::obs
