#include "kv/kv_space.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace smartinf::kv {

namespace {

int
ceilDiv(std::int64_t tokens, int block_tokens)
{
    return static_cast<int>((tokens + block_tokens - 1) / block_tokens);
}

} // namespace

KvSpace::KvSpace(const KvSpaceConfig &config) : config_(config)
{
    SI_REQUIRE(config_.block_tokens >= 1,
               "KvSpace needs block_tokens >= 1, got ",
               config_.block_tokens);
    SI_REQUIRE(config_.bytes_per_token > 0.0,
               "KvSpace needs resolved bytes_per_token");
    SI_REQUIRE(config_.hbm_blocks >= 0 && config_.host_blocks >= 0,
               "negative tier capacity");
}

BlockId
KvSpace::allocateBlock()
{
    // Reuse a hole when one exists. Otherwise, before the arena grows past
    // the HBM tier (every further slot spills), evict cold refcount-0
    // prefixes, coldest first, until a slot frees or nothing is evictable.
    if (!alloc_.hasFreeSlot()) {
        while (alloc_.spanBlocks() >= config_.hbm_blocks) {
            auto freed = prefix_.evictLru();
            if (!freed)
                break;
            for (const BlockId block : *freed)
                alloc_.free(block);
            if (alloc_.hasFreeSlot())
                break;
        }
    }
    return alloc_.allocate();
}

int
KvSpace::admit(int request_id, int prefix_id, int prefix_tokens)
{
    SI_ASSERT(tables_.find(request_id) == tables_.end(),
              "request admitted twice");
    Table table;
    int shared = 0;
    if (prefix_id >= 0 && prefix_tokens > 0) {
        table.prefix_id = prefix_id;
        if (const PrefixCache::Entry *entry = prefix_.acquire(prefix_id)) {
            // Hit: map the shared pages; this request's prompt may be
            // shorter than the cached prefix, in which case it shares
            // only its own leading tokens of the entry.
            shared = static_cast<int>(
                std::min<std::int64_t>(entry->tokens, prefix_tokens));
            const int pages = ceilDiv(shared, config_.block_tokens);
            table.blocks.assign(entry->blocks.begin(),
                                entry->blocks.begin() + pages);
            table.shared_blocks = pages;
            table.prefix_boundary = shared;
            table.tokens = shared;
        } else {
            // Miss: this request produces the prefix. The entry's pages
            // are allocated now (in admission order, so placement is
            // deterministic) and filled by this request's own prefill.
            const int pages = ceilDiv(prefix_tokens, config_.block_tokens);
            std::vector<BlockId> blocks;
            blocks.reserve(pages);
            for (int i = 0; i < pages; ++i)
                blocks.push_back(allocateBlock());
            table.blocks = blocks;
            table.shared_blocks = pages;
            table.prefix_boundary = prefix_tokens;
            prefix_.insert(prefix_id, prefix_tokens, std::move(blocks));
        }
    }
    table_entries_ += static_cast<std::int64_t>(table.blocks.size());
    peak_table_bytes_ =
        std::max(peak_table_bytes_,
                 static_cast<Bytes>(table_entries_) * kBlockTableEntryBytes);
    tables_.emplace(request_id, std::move(table));
    return shared;
}

void
KvSpace::beginStep()
{
    SI_ASSERT(!step_open_, "overlapping KvSpace steps");
    step_open_ = true;
    step_reads_.clear();
    step_writes_.clear();
}

void
KvSpace::noteRead(int request_id)
{
    SI_ASSERT(step_open_, "noteRead outside a step");
    const Table &table = tables_.at(request_id);
    const int bt = config_.block_tokens;
    for (std::size_t i = 0; i < table.blocks.size(); ++i) {
        const std::int64_t page_lo = static_cast<std::int64_t>(i) * bt;
        if (page_lo >= table.tokens)
            break;
        const std::int64_t extent =
            std::min<std::int64_t>(bt, table.tokens - page_lo);
        const std::int64_t slot_lo =
            static_cast<std::int64_t>(table.blocks[i]) * bt;
        step_reads_.push_back({slot_lo, slot_lo + extent});
    }
}

void
KvSpace::pushWrite(std::int64_t lo, std::int64_t hi)
{
    if (!step_writes_.empty() && step_writes_.back().hi == lo)
        step_writes_.back().hi = hi; // contiguous slots coalesce
    else
        step_writes_.push_back({lo, hi});
}

void
KvSpace::noteAppend(int request_id, int tokens)
{
    SI_ASSERT(step_open_, "noteAppend outside a step");
    SI_ASSERT(tokens > 0, "empty append");
    Table &table = tables_.at(request_id);
    const int bt = config_.block_tokens;
    std::int64_t remaining = tokens;
    while (remaining > 0) {
        const std::int64_t pos = table.tokens;
        const int page = static_cast<int>(pos / bt);
        const int off = static_cast<int>(pos % bt);
        if (page < table.shared_blocks && pos >= table.prefix_boundary) {
            // First divergent append lands inside a partial shared page:
            // copy-on-write. The copy duplicates the page's prefix fill
            // (an on-device copy — counted, never a flow) and the table
            // diverges from the cache entry from this page on.
            table.blocks[page] = allocateBlock();
            table.shared_blocks = page;
            ++cow_copies_;
        }
        if (page == static_cast<int>(table.blocks.size())) {
            table.blocks.push_back(allocateBlock());
            ++table_entries_;
            peak_table_bytes_ = std::max(
                peak_table_bytes_, static_cast<Bytes>(table_entries_) *
                                       kBlockTableEntryBytes);
        }
        const std::int64_t take =
            std::min<std::int64_t>(remaining, bt - off);
        const std::int64_t slot_lo =
            static_cast<std::int64_t>(table.blocks[page]) * bt + off;
        // The producing request writes its shared pages too (it creates
        // the cached KV); hit requests never append below their boundary,
        // which is exactly the "no write flows for shared blocks" saving.
        pushWrite(slot_lo, slot_lo + take);
        table.tokens += take;
        remaining -= take;
    }
}

KvStepPlan
KvSpace::finishStep()
{
    SI_ASSERT(step_open_, "finishStep outside a step");
    step_open_ = false;
    KvStepPlan plan;
    // Reads from different requests may overlap on shared pages (and two
    // hit requests of different prompt lengths overlap partially); merge
    // sorted overlapping/adjacent ranges so every arena token is read at
    // most once per step.
    std::sort(step_reads_.begin(), step_reads_.end(),
              [](const KvTokenRange &a, const KvTokenRange &b) {
                  return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
              });
    for (const KvTokenRange &r : step_reads_) {
        if (!plan.reads.empty() && r.lo <= plan.reads.back().hi)
            plan.reads.back().hi = std::max(plan.reads.back().hi, r.hi);
        else
            plan.reads.push_back(r);
    }
    // Writes are disjoint by construction (every arena token is appended
    // exactly once); sort and coalesce adjacency across requests.
    std::sort(step_writes_.begin(), step_writes_.end(),
              [](const KvTokenRange &a, const KvTokenRange &b) {
                  return a.lo < b.lo;
              });
    for (const KvTokenRange &r : step_writes_) {
        if (!plan.writes.empty() && r.lo == plan.writes.back().hi)
            plan.writes.back().hi = r.hi;
        else
            plan.writes.push_back(r);
    }
    step_reads_.clear();
    step_writes_.clear();
    return plan;
}

void
KvSpace::retire(int request_id)
{
    auto it = tables_.find(request_id);
    SI_ASSERT(it != tables_.end(), "retiring an unknown request");
    Table &table = it->second;
    for (std::size_t i = static_cast<std::size_t>(table.shared_blocks);
         i < table.blocks.size(); ++i)
        alloc_.free(table.blocks[i]);
    table_entries_ -= static_cast<std::int64_t>(table.blocks.size());
    if (table.prefix_id >= 0)
        prefix_.release(table.prefix_id);
    tables_.erase(it);
}

KvGauges
KvSpace::gauges() const
{
    KvGauges g;
    g.used_blocks = alloc_.usedBlocks();
    g.span_blocks = alloc_.spanBlocks();
    g.fragmentation = alloc_.fragmentationRatio();
    g.block_table_bytes =
        static_cast<Bytes>(table_entries_) * kBlockTableEntryBytes;
    g.prefix_hit_rate = prefix_.hitRate();
    g.prefix_hits = prefix_.hits();
    g.prefix_misses = prefix_.misses();
    g.prefix_evictions = prefix_.evictions();
    g.cow_copies = cow_copies_;

    // Valid tokens per live slot: private pages take their table's fill,
    // cache-owned pages their entry's (the producer's in-flight prefill
    // rounds up to the entry extent — gauges are witnesses, not flows).
    const int bt = config_.block_tokens;
    std::vector<std::int64_t> extent(
        static_cast<std::size_t>(alloc_.spanBlocks()), -1);
    auto mark = [&](BlockId slot, std::int64_t tokens) {
        if (slot < static_cast<int>(extent.size()))
            extent[static_cast<std::size_t>(slot)] =
                std::max(extent[static_cast<std::size_t>(slot)], tokens);
    };
    for (const auto &[id, table] : tables_) {
        for (std::size_t i = static_cast<std::size_t>(table.shared_blocks);
             i < table.blocks.size(); ++i) {
            const std::int64_t page_lo = static_cast<std::int64_t>(i) * bt;
            mark(table.blocks[i],
                 std::clamp<std::int64_t>(table.tokens - page_lo, 0, bt));
        }
    }
    for (const auto &[id, entry] : prefix_.entries()) {
        for (std::size_t i = 0; i < entry.blocks.size(); ++i) {
            const std::int64_t page_lo = static_cast<std::int64_t>(i) * bt;
            mark(entry.blocks[i],
                 std::clamp<std::int64_t>(entry.tokens - page_lo, 0, bt));
        }
    }
    for (std::size_t slot = 0; slot < extent.size(); ++slot) {
        if (extent[slot] < 0)
            continue; // a hole
        const int s = static_cast<int>(slot);
        const Bytes bytes =
            static_cast<Bytes>(extent[slot]) * config_.bytes_per_token;
        if (s < config_.hbm_blocks) {
            ++g.used_hbm;
            g.hbm_bytes += bytes;
        } else if (s < config_.hbm_blocks + config_.host_blocks) {
            ++g.used_host;
            g.host_bytes += bytes;
        } else {
            ++g.used_csd;
            g.csd_bytes += bytes;
        }
    }
    g.free_hbm = std::max(0, config_.hbm_blocks - g.used_hbm);
    g.free_host = std::max(0, config_.host_blocks - g.used_host);
    return g;
}

} // namespace smartinf::kv
