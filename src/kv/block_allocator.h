/**
 * @file
 * The paged KV-cache block allocator (vLLM-style): the KV arena is an
 * array of fixed-size pages ("blocks", `block_tokens` tokens each) indexed
 * by slot position, and the allocator hands out slots with free-list
 * reuse. Slot position *is* tier position — a slot's byte range
 * `[slot * block_bytes, (slot+1) * block_bytes)` overlaps the strict
 * HBM → host → CSD tier order exactly like the contiguous layout's byte
 * offsets did — so retirement holes near the front of the arena are real,
 * reusable HBM capacity, and fragmentation (live pages pushed to high
 * slots past holes the current allocation cannot use) is a measurable
 * spill cost instead of an invisible watermark.
 *
 * Determinism contract: allocation is *stable* — the lowest free slot is
 * always taken first (std::set keeps the free list ordered), and the span
 * only grows when the free list is empty. Callers allocate in request-id /
 * admission order from deterministic event callbacks, so repeated runs
 * produce bit-identical block tables. No randomness, no pointer-keyed
 * containers.
 */
#ifndef SMARTINF_KV_BLOCK_ALLOCATOR_H
#define SMARTINF_KV_BLOCK_ALLOCATOR_H

#include <cstdint>
#include <set>

namespace smartinf::kv {

/** Index of one fixed-size KV page (slot position in the arena). */
using BlockId = int;

/** Deterministic free-list page allocator (see file comment). */
class BlockAllocator
{
  public:
    /** Take the lowest free slot, extending the arena span only when no
     *  freed slot is available. */
    BlockId allocate();

    /** Return @p block to the free list. Trailing free slots shrink the
     *  span, so a drained allocator is byte-identical to a fresh one. */
    void free(BlockId block);

    /** True when allocate() would reuse a freed slot (no span growth). */
    bool hasFreeSlot() const { return !free_.empty(); }

    /** Live (allocated, not freed) blocks. */
    int usedBlocks() const { return used_; }
    /** Arena extent in blocks: highest ever-live slot + 1, minus trailing
     *  trimmed frees. Span − used = holes (internal fragmentation). */
    int spanBlocks() const { return span_; }
    /** Free slots inside the span (the holes). */
    int freeBlocksInSpan() const { return span_ - used_; }

    /** Largest simultaneous live-block count seen. */
    int peakUsedBlocks() const { return peak_used_; }
    /** Largest span seen — the arena footprint a contiguous layout of the
     *  same live set would *not* have needed beyond peakUsedBlocks(). */
    int peakSpanBlocks() const { return peak_span_; }
    /**
     * Largest span / used ratio seen while blocks were live. Note peak
     * span and peak used alone cannot measure fragmentation: the span
     * only grows when the free list is empty (arena full, span == used),
     * so their peaks always nearly agree — holes show up in the *ratio*
     * while requests retire out of order, which is what this tracks.
     */
    double peakFragmentation() const { return peak_frag_; }

    /**
     * Current span / used ratio (1.0 = perfectly compact, > 1.0 means
     * holes are pushing live pages toward deeper tiers). 1.0 when empty.
     */
    double fragmentationRatio() const;

    std::uint64_t allocations() const { return allocations_; }
    std::uint64_t frees() const { return frees_; }

  private:
    std::set<BlockId> free_; ///< ordered => lowest-slot-first reuse
    int span_ = 0;
    int used_ = 0;
    int peak_span_ = 0;
    int peak_used_ = 0;
    double peak_frag_ = 1.0;
    std::uint64_t allocations_ = 0;
    std::uint64_t frees_ = 0;
};

} // namespace smartinf::kv

#endif // SMARTINF_KV_BLOCK_ALLOCATOR_H
