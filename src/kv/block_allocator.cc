#include "kv/block_allocator.h"

#include <algorithm>

#include "common/logging.h"

namespace smartinf::kv {

BlockId
BlockAllocator::allocate()
{
    BlockId slot;
    if (!free_.empty()) {
        slot = *free_.begin();
        free_.erase(free_.begin());
    } else {
        slot = span_++;
    }
    ++used_;
    ++allocations_;
    peak_used_ = std::max(peak_used_, used_);
    peak_span_ = std::max(peak_span_, span_);
    return slot;
}

void
BlockAllocator::free(BlockId block)
{
    SI_ASSERT(block >= 0 && block < span_, "freeing a slot outside the span");
    const bool inserted = free_.insert(block).second;
    SI_ASSERT(inserted, "double free of a KV block");
    --used_;
    ++frees_;
    // Trim trailing holes so a drained arena returns to span 0 and the
    // next allocation wave restarts at slot 0 (contiguous-equivalence
    // anchor for serial workloads).
    while (span_ > 0) {
        auto it = free_.find(span_ - 1);
        if (it == free_.end())
            break;
        free_.erase(it);
        --span_;
    }
    // Fragmentation peaks right here: frees open holes (span fixed, used
    // down), allocations only close them.
    if (used_ > 0)
        peak_frag_ = std::max(peak_frag_, static_cast<double>(span_) /
                                              static_cast<double>(used_));
}

double
BlockAllocator::fragmentationRatio() const
{
    if (used_ == 0)
        return 1.0;
    return static_cast<double>(span_) / static_cast<double>(used_);
}

} // namespace smartinf::kv
