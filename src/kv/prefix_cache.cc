#include "kv/prefix_cache.h"

#include <utility>

#include "common/logging.h"

namespace smartinf::kv {

const PrefixCache::Entry *
PrefixCache::acquire(int prefix_id)
{
    auto it = entries_.find(prefix_id);
    if (it == entries_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    it->second.refcount += 1;
    it->second.last_use = ++tick_;
    return &it->second;
}

const PrefixCache::Entry *
PrefixCache::insert(int prefix_id, int tokens, std::vector<BlockId> blocks)
{
    SI_ASSERT(tokens > 0, "inserting an empty prefix");
    Entry entry;
    entry.tokens = tokens;
    entry.blocks = std::move(blocks);
    entry.refcount = 1;
    entry.last_use = ++tick_;
    auto [it, inserted] = entries_.emplace(prefix_id, std::move(entry));
    SI_ASSERT(inserted, "prefix inserted twice");
    return &it->second;
}

void
PrefixCache::release(int prefix_id)
{
    auto it = entries_.find(prefix_id);
    SI_ASSERT(it != entries_.end(), "releasing an unknown prefix");
    SI_ASSERT(it->second.refcount > 0, "refcount underflow");
    it->second.refcount -= 1;
    it->second.last_use = ++tick_;
}

std::optional<std::vector<BlockId>>
PrefixCache::evictLru()
{
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second.refcount > 0)
            continue; // pinned by an admitted request
        if (victim == entries_.end() ||
            it->second.last_use < victim->second.last_use)
            victim = it;
    }
    if (victim == entries_.end())
        return std::nullopt;
    std::vector<BlockId> blocks = std::move(victim->second.blocks);
    entries_.erase(victim);
    ++evictions_;
    return blocks;
}

int
PrefixCache::cachedBlocks() const
{
    int count = 0;
    for (const auto &[id, entry] : entries_)
        count += static_cast<int>(entry.blocks.size());
    return count;
}

double
PrefixCache::hitRate() const
{
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 1.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(total);
}

} // namespace smartinf::kv
