/**
 * @file
 * The shared-prefix cache: requests carrying the same `prefix_id` (a
 * shared system prompt) map their common leading prompt tokens to one
 * refcounted set of KV pages instead of re-prefilling them. Pure
 * bookkeeping — entries, refcounts, LRU order, hit/miss statistics; page
 * allocation and byte accounting stay in KvSpace, which owns both this
 * cache and the BlockAllocator.
 *
 * Lifecycle of one entry:
 *  - miss: the first request with a prefix_id inserts the entry (ref 1)
 *    and *produces* the prefix KV during its own prefill;
 *  - hit: later requests acquire() it (ref + 1) and skip the shared
 *    tokens' prefill compute and KV writes entirely;
 *  - release() on retirement drops the ref; the entry *stays cached* at
 *    ref 0 (that is the whole point — the next request hits it);
 *  - eviction happens only at refcount 0, coldest entry first, where
 *    "coldest" is least-recently-used by *simulated* time: every
 *    acquire/insert/release stamps a monotonic use tick drawn inside
 *    deterministic event callbacks, so the eviction order is a pure
 *    function of the request stream (bit-identical across repeats).
 */
#ifndef SMARTINF_KV_PREFIX_CACHE_H
#define SMARTINF_KV_PREFIX_CACHE_H

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "kv/block_allocator.h"

namespace smartinf::kv {

/** Refcounted shared-prefix bookkeeping (see file comment). */
class PrefixCache
{
  public:
    /** One cached shared prefix. */
    struct Entry {
        int tokens = 0; ///< prefix length the pages hold (fixed at insert)
        std::vector<BlockId> blocks; ///< ceil(tokens / block_tokens) pages
        int refcount = 0;            ///< admitted requests mapping it
        std::uint64_t last_use = 0;  ///< monotonic sim-order use tick
    };

    /**
     * Look the prefix up. Hit: bumps the refcount + use tick, counts a
     * hit, returns the entry. Miss: counts a miss, returns nullptr — the
     * caller inserts via insert() and becomes the producing request.
     */
    const Entry *acquire(int prefix_id);

    /** Register a new entry (ref 1, the inserting request's). The pages
     *  were just allocated by the caller; this cache owns them until
     *  eviction returns them. */
    const Entry *insert(int prefix_id, int tokens,
                        std::vector<BlockId> blocks);

    /** Drop one reference (request retirement). The entry stays cached. */
    void release(int prefix_id);

    /**
     * Evict the least-recently-used refcount-0 entry and hand its pages
     * back to the caller to free. nullopt when every entry is pinned (or
     * the cache is empty) — the caller then extends the arena instead.
     */
    std::optional<std::vector<BlockId>> evictLru();

    /** Pages currently held by cached entries (any refcount). */
    int cachedBlocks() const;
    /** Cached entries (any refcount). */
    int entryCount() const { return static_cast<int>(entries_.size()); }
    /** All cached entries, keyed by prefix_id (gauges, tests). */
    const std::map<int, Entry> &entries() const { return entries_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    /** hits / (hits + misses); 1.0 before any lookup. */
    double hitRate() const;

  private:
    std::map<int, Entry> entries_; ///< ordered => deterministic iteration
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace smartinf::kv

#endif // SMARTINF_KV_PREFIX_CACHE_H
