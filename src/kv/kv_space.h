/**
 * @file
 * KvSpace: one serving node's paged KV-cache state — the glue between the
 * BatchScheduler (which drives it from deterministic event callbacks) and
 * the BlockAllocator + PrefixCache primitives. It owns the per-request
 * block tables and turns each scheduler step into *token ranges* of the
 * global KV arena (slot s covers arena tokens [s*block_tokens,
 * (s+1)*block_tokens)), which the InferenceBuilder then splits over the
 * HBM → host → CSD tiers exactly like the contiguous layout's byte
 * offsets. Only token-valid bytes travel (a partial tail page moves its
 * fill, not the whole page), so paged mode with a compact arena
 * reproduces the contiguous flow volumes bit-identically — fragmentation
 * costs appear purely through *placement*: holes push live pages to high
 * slots, past the tier boundaries.
 *
 * Step protocol (all calls from the scheduler, in admission order):
 *   admit(id, prefix_id, prefix_tokens)  -> shared tokens (prefix hit)
 *   beginStep(); { noteRead(id); noteAppend(id, n); }*  -> finishStep()
 *   retire(id)   // frees private pages, releases the prefix reference
 *
 * Shared-prefix semantics: a hit maps the entry's pages into the new
 * request's table (refcounted; the hit request neither re-computes nor
 * re-writes those tokens). A miss makes the request the *producer*: the
 * entry's pages are allocated up front and the request's own prefill
 * appends fill them. The first append past the shared boundary into a
 * partial shared page triggers copy-on-write: the page's prefix fill is
 * copied to a fresh private page (counted, not a flow) and the table
 * diverges; page-aligned prefixes append into fresh pages with no COW.
 * Eviction (refcount 0 only, LRU by sim-time order) triggers when an
 * allocation would otherwise grow the arena past the HBM tier.
 */
#ifndef SMARTINF_KV_KV_SPACE_H
#define SMARTINF_KV_KV_SPACE_H

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.h"
#include "kv/block_allocator.h"
#include "kv/prefix_cache.h"

namespace smartinf::kv {

/** Half-open range of global arena token positions [lo, hi). */
struct KvTokenRange {
    std::int64_t lo = 0;
    std::int64_t hi = 0;
};

/** One scheduler step's KV working set, in arena token ranges (sorted,
 *  disjoint, overlap-merged). Reads are the pre-append resident state;
 *  writes are the step's appended tokens. */
struct KvStepPlan {
    std::vector<KvTokenRange> reads;
    std::vector<KvTokenRange> writes;
};

/** Static shape of one node's paged KV arena. */
struct KvSpaceConfig {
    int block_tokens = 0;      ///< tokens per page (> 0)
    Bytes bytes_per_token = 0; ///< resolved KV bytes per token (> 0)
    int hbm_blocks = 0;        ///< slots that fit the HBM budget
    int host_blocks = 0;       ///< slots that fit the host budget
};

/** Witness-only gauges for the obs layer (never feed back into results). */
struct KvGauges {
    int used_blocks = 0; ///< live pages
    int span_blocks = 0; ///< arena extent (used + holes)
    int used_hbm = 0, free_hbm = 0;   ///< live / free slots in the HBM tier
    int used_host = 0, free_host = 0; ///< live / free slots in the host tier
    int used_csd = 0;                 ///< live slots past HBM+host
    double fragmentation = 1.0;       ///< span / used (1.0 = compact)
    Bytes block_table_bytes = 0;      ///< mapping-metadata footprint
    Bytes hbm_bytes = 0, host_bytes = 0, csd_bytes = 0; ///< valid KV per tier
    double prefix_hit_rate = 1.0;
    std::uint64_t prefix_hits = 0, prefix_misses = 0;
    std::uint64_t prefix_evictions = 0, cow_copies = 0;
};

/** Bytes of mapping metadata per block-table entry (one 64-bit physical
 *  page number per logical page, vLLM-style). */
constexpr Bytes kBlockTableEntryBytes = 8.0;

/** One node's paged KV-cache state (see file comment). */
class KvSpace
{
  public:
    explicit KvSpace(const KvSpaceConfig &config);

    /**
     * Create the request's block table at admission. When @p prefix_id
     * >= 0 and the prefix is cached, the entry's pages are mapped shared
     * and the hit count of tokens is returned (the request skips their
     * prefill compute and writes). On a miss the request becomes the
     * producer (entry inserted, 0 returned).
     */
    int admit(int request_id, int prefix_id, int prefix_tokens);

    /** @name One scheduler step (admission-order calls between begin and
     *  finish; reads must precede the same request's append). @{ */
    void beginStep();
    /** Declare the request's resident (pre-append) KV as read this step. */
    void noteRead(int request_id);
    /** Append @p tokens to the request's KV (allocates pages / COWs). */
    void noteAppend(int request_id, int tokens);
    /** Merge and return the step's ranges; resets the step scratch. */
    KvStepPlan finishStep();
    /** @} */

    /** Free the request's private pages and release its prefix. */
    void retire(int request_id);

    /** Current gauges (tier usage, fragmentation, table bytes, hits). */
    KvGauges gauges() const;

    /** @name Peak statistics for the workload result. @{ */
    int peakUsedBlocks() const { return alloc_.peakUsedBlocks(); }
    int peakSpanBlocks() const { return alloc_.peakSpanBlocks(); }
    double peakFragmentation() const { return alloc_.peakFragmentation(); }
    Bytes peakBlockTableBytes() const { return peak_table_bytes_; }
    /** @} */

    const BlockAllocator &allocator() const { return alloc_; }
    const PrefixCache &prefixes() const { return prefix_; }

  private:
    /** Per-request block table. Pages [0, shared_blocks) belong to the
     *  prefix cache; the rest are private. */
    struct Table {
        std::vector<BlockId> blocks;
        std::int64_t tokens = 0; ///< resident tokens (incl. shared)
        int shared_blocks = 0;
        std::int64_t prefix_boundary = 0; ///< first token past the prefix
        int prefix_id = -1;               ///< held reference (-1 = none)
    };

    /** Free-list first; evicts cold prefixes before the arena would grow
     *  past the HBM tier. */
    BlockId allocateBlock();
    void pushWrite(std::int64_t lo, std::int64_t hi);

    KvSpaceConfig config_;
    BlockAllocator alloc_;
    PrefixCache prefix_;
    std::map<int, Table> tables_; ///< ordered => deterministic gauges

    std::int64_t table_entries_ = 0; ///< live block-table entries
    Bytes peak_table_bytes_ = 0;
    std::uint64_t cow_copies_ = 0;

    bool step_open_ = false;
    std::vector<KvTokenRange> step_reads_;
    std::vector<KvTokenRange> step_writes_;
};

} // namespace smartinf::kv

#endif // SMARTINF_KV_KV_SPACE_H
