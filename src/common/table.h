/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to render the
 * paper's tables and figure series as aligned console output (and CSV).
 */
#ifndef SMARTINF_COMMON_TABLE_H
#define SMARTINF_COMMON_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace smartinf {

/** A titled table with a header row and string cells. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Define the column headers; must be called before addRow(). */
    void setHeader(std::vector<std::string> header);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with the given precision. */
    static std::string num(double value, int precision = 2);
    /** Convenience: format as a multiplicative factor, e.g. "1.85x". */
    static std::string factor(double value, int precision = 2);
    /** Convenience: format as a percentage, e.g. "75.6%". */
    static std::string percent(double fraction, int precision = 1);

    /** Render with aligned columns to the stream. */
    void print(std::ostream &os) const;
    /** Render as CSV (for downstream plotting). */
    void printCsv(std::ostream &os) const;

    const std::string &title() const { return title_; }
    std::size_t rowCount() const { return rows_.size(); }
    /** Structured access for the exp/ JSON and CSV emitters. */
    const std::vector<std::string> &header() const { return header_; }
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace smartinf

#endif // SMARTINF_COMMON_TABLE_H
