/**
 * @file
 * Unit helpers. All bandwidths in this codebase are bytes/second, all sizes
 * bytes, all times seconds (double). These helpers keep literals readable.
 */
#ifndef SMARTINF_COMMON_UNITS_H
#define SMARTINF_COMMON_UNITS_H

#include <cstdint>

namespace smartinf {

/** Simulated time in seconds. */
using Seconds = double;
/** Transfer/storage sizes in bytes (double: fluid-flow model splits bytes). */
using Bytes = double;
/** Bandwidth in bytes per second. */
using BytesPerSec = double;
/** Compute work in floating-point operations. */
using Flops = double;

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;
constexpr double kTera = 1e12;

/** Decimal gigabytes (storage-vendor convention, used by the paper). */
constexpr Bytes GB(double n) { return n * kGiga; }
constexpr Bytes MB(double n) { return n * kMega; }
constexpr Bytes KB(double n) { return n * kKilo; }
/** Binary gibibytes (device memory capacities). */
constexpr Bytes GiB(double n) { return n * 1024.0 * 1024.0 * 1024.0; }
constexpr Bytes MiB(double n) { return n * 1024.0 * 1024.0; }

/** Bandwidth literals. */
constexpr BytesPerSec GBps(double n) { return n * kGiga; }
constexpr BytesPerSec MBps(double n) { return n * kMega; }

/** Compute literals. */
constexpr Flops TFLOPS(double n) { return n * kTera; }
constexpr Flops GFLOPS(double n) { return n * kGiga; }

/** Sizes of the datatypes used in mixed-precision training. */
constexpr double kBytesFp16 = 2.0;
constexpr double kBytesFp32 = 4.0;
/** Index size used by Top-K compression wire format. */
constexpr double kBytesIndex = 4.0;

} // namespace smartinf

#endif // SMARTINF_COMMON_UNITS_H
