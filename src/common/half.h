/**
 * @file
 * IEEE 754 binary16 (half precision) conversion. Mixed-precision training
 * keeps FP16 model parameters in "host memory" / "SSD" while the optimizer
 * maintains FP32 master copies — exactly the layout ZeRO-Infinity and the
 * paper assume (model size M counts FP16 bytes).
 */
#ifndef SMARTINF_COMMON_HALF_H
#define SMARTINF_COMMON_HALF_H

#include <cstddef>
#include <cstdint>

namespace smartinf {

/** Opaque storage type for an IEEE binary16 value. */
using half_t = uint16_t;

/** Convert a single float to binary16 with round-to-nearest-even. */
half_t floatToHalf(float value);

/** Convert a single binary16 value to float (exact). */
float halfToFloat(half_t value);

/** Bulk conversions. Destination and source must not overlap. */
void floatToHalf(const float *src, half_t *dst, std::size_t n);
void halfToFloat(const half_t *src, float *dst, std::size_t n);

/** True when the binary16 value is NaN or +-Inf (loss-scaling overflow scan). */
bool halfIsNanOrInf(half_t value);

/** Largest finite binary16 magnitude (65504). */
constexpr float kHalfMax = 65504.0f;

} // namespace smartinf

#endif // SMARTINF_COMMON_HALF_H
