/**
 * @file
 * Streaming order statistics with a fixed memory bound: a geometric-bin
 * histogram plus an exact buffer for small populations. Below the exact
 * cap, percentiles are nearest-rank on the recorded samples — identical
 * to serve::summarizeLatencies. Above it the exact buffer is dropped and
 * percentiles come from the histogram: the estimate for a value in
 * [kMinValue, kMaxValue) is the geometric midpoint of its bin, so the
 * relative error is at most sqrt(kGrowth) - 1 (< 2%), and values below
 * kMinValue report 0 with absolute error < kMinValue (one microsecond
 * for latency populations). Count, sum (hence mean), min, and max stay
 * exact at every size.
 *
 * merge() is a commutative, associative fold (bins add; exactness is a
 * function of the combined count only), the same semigroup contract as
 * obs::CounterSampler — per-shard percentile sketches can combine without
 * a global record vector. Deterministic: no randomness, no wall clock.
 */
#ifndef SMARTINF_COMMON_STREAMING_PERCENTILES_H
#define SMARTINF_COMMON_STREAMING_PERCENTILES_H

#include <cstdint>
#include <vector>

namespace smartinf {

/** Bounded-memory percentile sketch (see file comment). */
class StreamingPercentiles
{
  public:
    /** Smallest distinguishable value; anything below (incl. <= 0) lands
     *  in the underflow bin and reports 0. */
    static constexpr double kMinValue = 1e-6;
    /** Largest distinguishable value; anything at or above lands in the
     *  overflow bin and reports kMaxValue. */
    static constexpr double kMaxValue = 1e6;
    /** Geometric bin width: each bin spans [lo, lo * kGrowth). */
    static constexpr double kGrowth = 1.04;

    /** Worst-case relative error of a histogram-mode percentile for
     *  values inside [kMinValue, kMaxValue): sqrt(kGrowth) - 1. */
    static double maxRelativeError();

    /** @param exact_cap population size up to which percentiles are
     *  exact (the record-cap knob); must be >= 0. */
    explicit StreamingPercentiles(int exact_cap = 4096);

    /** Fold one sample in. */
    void record(double value);

    /** Fold @p other in (commutative, associative; both sides must share
     *  the same exact_cap). */
    void merge(const StreamingPercentiles &other);

    /** True while percentile() is nearest-rank on the full population. */
    bool exact() const { return exact_; }

    std::int64_t count() const { return count_; }
    /** Exact at every population size (0 when empty). */
    double mean() const;
    double minValue() const { return count_ > 0 ? min_ : 0.0; }
    double maxValue() const { return count_ > 0 ? max_ : 0.0; }

    /**
     * Nearest-rank percentile (@p pct in [0, 100]; empty population =>
     * 0.0, matching summarizeLatencies). Exact below the cap; the binned
     * estimate of the nearest-rank sample above it.
     */
    double percentile(double pct) const;

  private:
    static int binIndex(double value);
    static double binEstimate(int bin);

    int exact_cap_;
    bool exact_ = true;
    std::int64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<double> samples_;     ///< dropped once count_ > exact_cap_
    std::vector<std::int64_t> bins_;  ///< lazily sized on first record()
};

} // namespace smartinf

#endif // SMARTINF_COMMON_STREAMING_PERCENTILES_H
