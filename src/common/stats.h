/**
 * @file
 * Lightweight statistics primitives used across the simulator: counters,
 * running mean/min/max accumulators, and a registry so components can dump a
 * coherent snapshot after a run.
 */
#ifndef SMARTINF_COMMON_STATS_H
#define SMARTINF_COMMON_STATS_H

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace smartinf {

/** A named monotonically increasing counter. */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(std::string name) : name_(std::move(name)) {}

    void add(double amount) { value_ += amount; }
    void increment() { value_ += 1.0; }
    void reset() { value_ = 0.0; }

    double value() const { return value_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    double value_ = 0.0;
};

/** Streaming summary statistics (count / mean / min / max / stddev). */
class RunningStats
{
  public:
    void
    add(double sample)
    {
        ++count_;
        const double delta = sample - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (sample - mean_);
        if (sample < min_)
            min_ = sample;
        if (sample > max_)
            max_ = sample;
        sum_ += sample;
    }

    void
    reset()
    {
        count_ = 0;
        mean_ = m2_ = sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

    uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    /** Sample variance (n-1 denominator); 0 with fewer than two samples. */
    double
    variance() const
    {
        return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
    }
    double stddev() const;

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * A flat name -> value map components append to when asked to report.
 * Keys use '.'-separated paths, e.g. "link.host_pcie.bytes".
 */
class StatSnapshot
{
  public:
    void set(const std::string &key, double value) { values_[key] = value; }
    /** Returns 0 for unknown keys (convenient in report printers). */
    double
    get(const std::string &key) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? 0.0 : it->second;
    }
    bool has(const std::string &key) const { return values_.count(key) != 0; }
    const std::map<std::string, double> &values() const { return values_; }

  private:
    std::map<std::string, double> values_;
};

} // namespace smartinf

#endif // SMARTINF_COMMON_STATS_H
