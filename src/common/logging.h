/**
 * @file
 * Status-message and error-handling primitives, modelled after gem5's
 * logging conventions: inform()/warn() report status, fatal() terminates on
 * user error, panic() aborts on internal invariant violations.
 */
#ifndef SMARTINF_COMMON_LOGGING_H
#define SMARTINF_COMMON_LOGGING_H

#include <functional>
#include <sstream>
#include <string>

namespace smartinf {

/** Severity classes used by the logging sink. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Pluggable message sink. Receives every emitted message (including
 * inform() while verbosity is off — filtering is the sink's decision) with
 * any sim-time prefix already applied, but without the severity prefix or
 * trailing newline. Install with setLogSink(); an empty sink restores the
 * default stream behaviour, which defaultLogSink() also exposes directly
 * so custom sinks can tee into it.
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/** Install @p sink process-wide (empty = default streams). Not
 *  thread-safe against concurrent emission: install before spawning
 *  worker threads. */
void setLogSink(LogSink sink);

/** The built-in behaviour: verbosity gate for Inform, severity prefix,
 *  stdout for Inform / stderr otherwise, trailing newline. */
void defaultLogSink(LogLevel level, const std::string &msg);

/**
 * Thread-local simulated-time source for log prefixes. While a clock is
 * installed, every message emitted on this thread is prefixed with
 * "[t=<now>s] " (printed output only — fatal()/panic() exception text is
 * never prefixed). Returns the previously installed clock so scopes nest:
 * install on entry, restore the returned value on exit. An engine run
 * under observation (obs::RunObservation) installs its simulator's clock
 * for the duration of the run.
 */
using LogClock = std::function<double()>;
LogClock exchangeLogClock(LogClock clock);

namespace detail {

/** Concatenate any streamable arguments into a single string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** Emit a message to the logging sink. Fatal exits, Panic aborts. */
[[noreturn]] void emitFatal(LogLevel level, const std::string &msg);
void emit(LogLevel level, const std::string &msg);

} // namespace detail

/** Global verbosity control: when false, inform() messages are suppressed. */
void setVerbose(bool verbose);
bool verbose();

/** Informative status message; no connotation of incorrect behaviour. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit(LogLevel::Inform, detail::concat(std::forward<Args>(args)...));
}

/** Something may not behave exactly as expected but execution continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

/** Unrecoverable *user* error (bad configuration, invalid argument). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitFatal(LogLevel::Fatal, detail::concat(std::forward<Args>(args)...));
}

/** Internal invariant violation — a bug in this library, never user error. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitFatal(LogLevel::Panic, detail::concat(std::forward<Args>(args)...));
}

} // namespace smartinf

/** Check an invariant; panics (library bug) when violated. */
#define SI_ASSERT(cond, ...)                                                       \
    do {                                                                           \
        if (!(cond)) {                                                             \
            ::smartinf::panic("assertion failed: ", #cond, " @ ", __FILE__, ":",   \
                              __LINE__, " ", ##__VA_ARGS__);                       \
        }                                                                          \
    } while (0)

/** Check a user-facing precondition; fatal (user error) when violated. */
#define SI_REQUIRE(cond, ...)                                                      \
    do {                                                                           \
        if (!(cond)) {                                                             \
            ::smartinf::fatal("requirement failed: ", #cond, " ", ##__VA_ARGS__);  \
        }                                                                          \
    } while (0)

#endif // SMARTINF_COMMON_LOGGING_H
