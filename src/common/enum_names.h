/**
 * @file
 * Shared inverse-lookup helper for enum name round-trips: every enum with
 * a name() and allValues() pair (Strategy, WorkloadKind, SchedulerPolicy,
 * ...) implements fromName() as one call here, so the case-insensitive
 * matching and unknown-name behavior cannot drift between them.
 */
#ifndef SMARTINF_COMMON_ENUM_NAMES_H
#define SMARTINF_COMMON_ENUM_NAMES_H

#include <algorithm>
#include <cctype>
#include <optional>
#include <string>
#include <vector>

namespace smartinf {

/**
 * The value in @p all whose @p nameFn rendering equals @p name
 * case-insensitively; nullopt when none does.
 */
template <typename E, typename NameFn>
std::optional<E>
enumFromName(const std::vector<E> &all, NameFn nameFn,
             const std::string &name)
{
    auto lowered = [](std::string s) {
        std::transform(s.begin(), s.end(), s.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        return s;
    };
    const std::string wanted = lowered(name);
    for (const E value : all)
        if (wanted == lowered(nameFn(value)))
            return value;
    return std::nullopt;
}

} // namespace smartinf

#endif // SMARTINF_COMMON_ENUM_NAMES_H
