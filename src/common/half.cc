#include "common/half.h"

#include <cstring>

namespace smartinf {

namespace {

uint32_t
floatBits(float f)
{
    uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

float
bitsFloat(uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

} // namespace

half_t
floatToHalf(float value)
{
    const uint32_t bits = floatBits(value);
    const uint32_t sign = (bits >> 16) & 0x8000u;
    int32_t exponent = static_cast<int32_t>((bits >> 23) & 0xffu) - 127 + 15;
    uint32_t mantissa = bits & 0x007fffffu;

    if (exponent >= 0x1f) {
        // Overflow to infinity; preserve NaN payload bit.
        const bool is_nan = ((bits & 0x7fffffffu) > 0x7f800000u);
        return static_cast<half_t>(sign | 0x7c00u | (is_nan ? 0x0200u : 0u));
    }
    if (exponent <= 0) {
        if (exponent < -10)
            return static_cast<half_t>(sign); // Rounds to +-0.
        // Subnormal: shift mantissa (with implicit leading 1) into place.
        mantissa |= 0x00800000u;
        const int shift = 14 - exponent;
        uint32_t half_mant = mantissa >> shift;
        // Round to nearest even.
        const uint32_t remainder = mantissa & ((1u << shift) - 1u);
        const uint32_t halfway = 1u << (shift - 1);
        if (remainder > halfway || (remainder == halfway && (half_mant & 1u)))
            ++half_mant;
        return static_cast<half_t>(sign | half_mant);
    }

    // Normal case, round-to-nearest-even on the dropped 13 bits.
    uint32_t half_mant = mantissa >> 13;
    const uint32_t remainder = mantissa & 0x1fffu;
    if (remainder > 0x1000u || (remainder == 0x1000u && (half_mant & 1u))) {
        ++half_mant;
        if (half_mant == 0x400u) { // Mantissa overflow bumps the exponent.
            half_mant = 0;
            ++exponent;
            if (exponent >= 0x1f)
                return static_cast<half_t>(sign | 0x7c00u);
        }
    }
    return static_cast<half_t>(sign | (static_cast<uint32_t>(exponent) << 10) |
                               half_mant);
}

float
halfToFloat(half_t value)
{
    const uint32_t sign = (static_cast<uint32_t>(value) & 0x8000u) << 16;
    const uint32_t exponent = (value >> 10) & 0x1fu;
    uint32_t mantissa = value & 0x3ffu;

    if (exponent == 0) {
        if (mantissa == 0)
            return bitsFloat(sign); // +-0.
        // Subnormal: normalize.
        int e = -1;
        do {
            ++e;
            mantissa <<= 1;
        } while ((mantissa & 0x400u) == 0);
        mantissa &= 0x3ffu;
        return bitsFloat(sign | ((127 - 15 - e) << 23) | (mantissa << 13));
    }
    if (exponent == 0x1f) { // Inf / NaN.
        return bitsFloat(sign | 0x7f800000u | (mantissa << 13));
    }
    return bitsFloat(sign | ((exponent - 15 + 127) << 23) | (mantissa << 13));
}

void
floatToHalf(const float *src, half_t *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = floatToHalf(src[i]);
}

void
halfToFloat(const half_t *src, float *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = halfToFloat(src[i]);
}

bool
halfIsNanOrInf(half_t value)
{
    return ((value >> 10) & 0x1fu) == 0x1fu;
}

} // namespace smartinf
