#include "common/streaming_percentiles.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace smartinf {

namespace {

/** Inner bins spanning [kMinValue, kMaxValue); +2 for under/overflow. */
int
innerBins()
{
    static const int n = static_cast<int>(std::ceil(
        std::log(StreamingPercentiles::kMaxValue /
                 StreamingPercentiles::kMinValue) /
        std::log(StreamingPercentiles::kGrowth)));
    return n;
}

} // namespace

double
StreamingPercentiles::maxRelativeError()
{
    return std::sqrt(kGrowth) - 1.0;
}

StreamingPercentiles::StreamingPercentiles(int exact_cap)
    : exact_cap_(exact_cap)
{
    SI_ASSERT(exact_cap >= 0, "StreamingPercentiles exact_cap must be >= 0");
}

int
StreamingPercentiles::binIndex(double value)
{
    if (!(value >= kMinValue))
        return 0; // underflow (incl. <= 0 and NaN-safe via the negation)
    if (value >= kMaxValue)
        return innerBins() + 1;
    const int i = 1 + static_cast<int>(std::log(value / kMinValue) /
                                       std::log(kGrowth));
    // Floating rounding at an exact bin edge can land one off; the clamp
    // keeps the estimate within one bin of the truth either way.
    return std::clamp(i, 1, innerBins());
}

double
StreamingPercentiles::binEstimate(int bin)
{
    if (bin <= 0)
        return 0.0; // below kMinValue: absolute error < kMinValue
    if (bin > innerBins())
        return kMaxValue;
    // Geometric midpoint of [kMin * g^(bin-1), kMin * g^bin): the
    // relative error against any value in the bin is <= sqrt(g) - 1.
    return kMinValue * std::pow(kGrowth, static_cast<double>(bin) - 0.5);
}

void
StreamingPercentiles::record(double value)
{
    if (bins_.empty())
        bins_.assign(static_cast<std::size_t>(innerBins()) + 2, 0);
    ++count_;
    sum_ += value;
    min_ = count_ == 1 ? value : std::min(min_, value);
    max_ = count_ == 1 ? value : std::max(max_, value);
    ++bins_[static_cast<std::size_t>(binIndex(value))];
    if (exact_) {
        if (count_ <= exact_cap_) {
            samples_.push_back(value);
        } else {
            exact_ = false;
            samples_.clear();
            samples_.shrink_to_fit();
        }
    }
}

void
StreamingPercentiles::merge(const StreamingPercentiles &other)
{
    SI_ASSERT(exact_cap_ == other.exact_cap_,
              "merging StreamingPercentiles with different exact caps");
    if (other.count_ == 0)
        return;
    if (bins_.empty())
        bins_.assign(static_cast<std::size_t>(innerBins()) + 2, 0);
    for (std::size_t i = 0; i < bins_.size(); ++i)
        bins_[i] += other.bins_[i];
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
    // Exactness is a function of the combined population size alone, so
    // any merge order of the same sampler set agrees on it (and on the
    // percentiles: nearest-rank sorts, so sample order is immaterial).
    if (exact_ && other.exact_ && count_ <= exact_cap_) {
        samples_.insert(samples_.end(), other.samples_.begin(),
                        other.samples_.end());
    } else {
        exact_ = false;
        samples_.clear();
        samples_.shrink_to_fit();
    }
}

double
StreamingPercentiles::mean() const
{
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double
StreamingPercentiles::percentile(double pct) const
{
    if (count_ == 0)
        return 0.0;
    // Nearest rank, exactly as serve::percentileSorted clamps it.
    const double raw = std::ceil(pct / 100.0 * static_cast<double>(count_));
    const std::int64_t rank = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(std::max(raw, 1.0)), 1, count_);
    if (exact_) {
        std::vector<double> sorted(samples_);
        std::sort(sorted.begin(), sorted.end());
        return sorted[static_cast<std::size_t>(rank) - 1];
    }
    std::int64_t seen = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        seen += bins_[i];
        if (seen >= rank)
            return binEstimate(static_cast<int>(i));
    }
    SI_ASSERT(false, "histogram count drifted from the sample count");
    return 0.0;
}

} // namespace smartinf
