#include "common/stats.h"

#include <cmath>

namespace smartinf {

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace smartinf
