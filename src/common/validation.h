/**
 * @file
 * Shared helper for config validate() implementations: collect one
 * actionable "what, got value" message per violated precondition.
 */
#ifndef SMARTINF_COMMON_VALIDATION_H
#define SMARTINF_COMMON_VALIDATION_H

#include <sstream>
#include <string>
#include <vector>

namespace smartinf {

/** Append "@p what, got @p got" to @p errors unless @p ok. */
template <typename T>
void
requireField(std::vector<std::string> &errors, bool ok, const char *what,
             const T &got)
{
    if (ok)
        return;
    std::ostringstream oss;
    oss << what << ", got " << got;
    errors.push_back(oss.str());
}

} // namespace smartinf

#endif // SMARTINF_COMMON_VALIDATION_H
