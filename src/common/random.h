/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**), so every
 * test, example, and benchmark is reproducible across platforms without
 * depending on libstdc++'s distribution implementations.
 */
#ifndef SMARTINF_COMMON_RANDOM_H
#define SMARTINF_COMMON_RANDOM_H

#include <cmath>
#include <cstdint>

namespace smartinf {

/**
 * xoshiro256** PRNG (Blackman & Vigna). Fast, high-quality, and small
 * enough to embed per-component so parallel streams never interleave.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eedu) { reseed(seed); }

    /** Re-initialize state from a 64-bit seed via splitmix64. */
    void
    reseed(uint64_t seed)
    {
        for (auto &word : state_)
            word = splitmix64(seed);
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double uniform() { return (next() >> 11) * 0x1.0p-53; }

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /** Uniform integer in [0, n). @pre n > 0. */
    uint64_t uniformInt(uint64_t n) { return next() % n; }

    /** Standard normal via Box-Muller. */
    double
    normal()
    {
        if (have_spare_) {
            have_spare_ = false;
            return spare_;
        }
        double u1 = 0.0;
        while (u1 == 0.0)
            u1 = uniform();
        const double u2 = uniform();
        const double mag = std::sqrt(-2.0 * std::log(u1));
        spare_ = mag * std::sin(2.0 * M_PI * u2);
        have_spare_ = true;
        return mag * std::cos(2.0 * M_PI * u2);
    }

    /** Normal with explicit mean / standard deviation. */
    double normal(double mean, double stddev) { return mean + stddev * normal(); }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static uint64_t
    splitmix64(uint64_t &x)
    {
        uint64_t z = (x += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    uint64_t state_[4] = {};
    double spare_ = 0.0;
    bool have_spare_ = false;
};

} // namespace smartinf

#endif // SMARTINF_COMMON_RANDOM_H
