#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <utility>

namespace smartinf {

namespace {

std::atomic<bool> g_verbose{true};

LogSink g_sink; ///< empty = defaultLogSink (install before threads spawn)

thread_local LogClock t_log_clock;

/** Apply the thread's sim-time prefix, if a clock is installed. */
std::string
stamped(const std::string &msg)
{
    if (!t_log_clock)
        return msg;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "[t=%.6fs] ", t_log_clock());
    return buf + msg;
}

const char *
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info: ";
      case LogLevel::Warn: return "warn: ";
      case LogLevel::Fatal: return "fatal: ";
      case LogLevel::Panic: return "panic: ";
    }
    return "?: ";
}

} // namespace

void
setLogSink(LogSink sink)
{
    g_sink = std::move(sink);
}

void
defaultLogSink(LogLevel level, const std::string &msg)
{
    if (level == LogLevel::Inform && !verbose())
        return;
    std::ostream &os = (level == LogLevel::Inform) ? std::cout : std::cerr;
    os << prefix(level) << msg << '\n';
}

LogClock
exchangeLogClock(LogClock clock)
{
    return std::exchange(t_log_clock, std::move(clock));
}

void
setVerbose(bool verbose)
{
    g_verbose.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return g_verbose.load(std::memory_order_relaxed);
}

namespace detail {

void
emit(LogLevel level, const std::string &msg)
{
    const std::string line = stamped(msg);
    if (g_sink)
        g_sink(level, line);
    else
        defaultLogSink(level, line);
}

void
emitFatal(LogLevel level, const std::string &msg)
{
    emit(level, msg);
    // Throw instead of aborting so unit tests can assert on failure paths;
    // uncaught, the exception still terminates the process with the message.
    // The exception text never carries the sim-time prefix: tests and
    // callers match on the stable "fatal:/panic: <msg>" form.
    if (level == LogLevel::Panic)
        throw std::logic_error("panic: " + msg);
    throw std::runtime_error("fatal: " + msg);
}

} // namespace detail

} // namespace smartinf
