#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace smartinf {

namespace {

std::atomic<bool> g_verbose{true};

const char *
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info: ";
      case LogLevel::Warn: return "warn: ";
      case LogLevel::Fatal: return "fatal: ";
      case LogLevel::Panic: return "panic: ";
    }
    return "?: ";
}

} // namespace

void
setVerbose(bool verbose)
{
    g_verbose.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return g_verbose.load(std::memory_order_relaxed);
}

namespace detail {

void
emit(LogLevel level, const std::string &msg)
{
    if (level == LogLevel::Inform && !verbose())
        return;
    std::ostream &os = (level == LogLevel::Inform) ? std::cout : std::cerr;
    os << prefix(level) << msg << '\n';
}

void
emitFatal(LogLevel level, const std::string &msg)
{
    std::cerr << prefix(level) << msg << std::endl;
    // Throw instead of aborting so unit tests can assert on failure paths;
    // uncaught, the exception still terminates the process with the message.
    if (level == LogLevel::Panic)
        throw std::logic_error("panic: " + msg);
    throw std::runtime_error("fatal: " + msg);
}

} // namespace detail

} // namespace smartinf
