#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace smartinf {

void
Table::setHeader(std::vector<std::string> header)
{
    SI_REQUIRE(rows_.empty(), "header must be set before rows");
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    SI_REQUIRE(row.size() == header_.size(),
               "row arity ", row.size(), " != header arity ", header_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::num(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
Table::factor(double value, int precision)
{
    return num(value, precision) + "x";
}

std::string
Table::percent(double fraction, int precision)
{
    return num(fraction * 100.0, precision) + "%";
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    os << "== " << title_ << " ==\n";
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << '\n';
    };
    print_row(header_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
    os << '\n';
}

void
Table::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    print_row(header_);
    for (const auto &row : rows_)
        print_row(row);
}

} // namespace smartinf
