/**
 * @file
 * GPU grades used in the paper's evaluation (§VII-A): A5000 (default),
 * A100 40GB (high end, Fig 11), A4000 (congested-topology study, Fig 17).
 * Effective FLOPS are *achieved* mixed-precision training throughput, not
 * peak — calibrated so the FW/BW share of the baseline iteration matches
 * Fig 3(a)/Fig 9.
 */
#ifndef SMARTINF_TRAIN_GPU_MODEL_H
#define SMARTINF_TRAIN_GPU_MODEL_H

#include <string>

#include "common/units.h"

namespace smartinf::train {

enum class GpuGrade { A5000, A100_40GB, A4000 };

const char *gpuName(GpuGrade grade);

/** Compute/transfer characteristics of one GPU. */
struct GpuModel {
    std::string name;
    /** Achieved mixed-precision training FLOPs per second. */
    Flops effective_flops;
    /** Device memory (limits batch size; informational here). */
    Bytes memory;
    /** Street price used by the cost-efficiency study (Fig 15). */
    double cost_usd;

    static GpuModel get(GpuGrade grade);
};

} // namespace smartinf::train

#endif // SMARTINF_TRAIN_GPU_MODEL_H
