/**
 * @file
 * The internal data transfer handler (paper §IV-B), functional version: two
 * host threads manage pre-allocated FPGA device buffers, streaming
 * subgroups SSD -> FPGA -> SSD. The urgent FP32 master parameters are
 * written back (and surfaced to the host) first; momentum/variance
 * writeback is deferred so the loader thread can begin the next subgroup.
 * A naive mode reproduces Fig 5(a): one buffer set, strict serialization.
 */
#ifndef SMARTINF_TRAIN_TRANSFER_HANDLER_H
#define SMARTINF_TRAIN_TRANSFER_HANDLER_H

#include <cstddef>
#include <cstdint>

#include "compress/topk.h"
#include "csd/csd.h"

namespace smartinf::train {

/** Byte layout of one CSD's parameter shard on its SSD. */
struct ShardLayout {
    std::size_t elems = 0; ///< parameters owned by this CSD
    int aux_states = 2;    ///< optimizer aux arrays (Adam: mmt + var)

    std::size_t masterOffset() const { return 0; }
    std::size_t
    auxOffset(int idx) const
    {
        return (1 + static_cast<std::size_t>(idx)) * elems * sizeof(float);
    }
    std::size_t
    gradOffset() const
    {
        return (1 + static_cast<std::size_t>(aux_states)) * elems *
               sizeof(float);
    }
    /** Bytes of SSD this shard occupies (states + dense gradients). */
    std::size_t
    totalBytes() const
    {
        return (2 + static_cast<std::size_t>(aux_states)) * elems *
               sizeof(float);
    }
};

/** Streams a shard through the CSD's FPGA and applies the update. */
class TransferHandler
{
  public:
    struct Config {
        /** Elements per subgroup/tasklet (the paper's D). */
        std::size_t subgroup_elems = 1 << 16;
        /** false reproduces the naive single-buffer handler (Fig 5a). */
        bool optimized = true;
    };

    /**
     * @param csd target device; must have an updater installed (and a
     *        decompressor when compressed gradients are used)
     * @param layout shard layout on the CSD's SSD
     */
    TransferHandler(csd::Csd &csd, const ShardLayout &layout,
                    const Config &config);

    /**
     * Run the update for the whole shard. Dense FP32 gradients must already
     * reside at layout.gradOffset() on the SSD.
     * @param step 1-based global step (bias correction)
     * @param host_params_out optional FP32 buffer of layout.elems receiving
     *        the updated master parameters (the "upstream" transfer)
     */
    void runUpdate(uint64_t step, float *host_params_out);

    /**
     * SmartComp variant: the gradients arrive compressed. The FPGA's
     * decompressor reconstructs each subgroup's dense slice before the
     * updater runs. @p sparse indices are global within the shard.
     */
    void runUpdateCompressed(const compress::SparseGradient &sparse,
                             uint64_t step, float *host_params_out);

    /** Number of subgroups (tasklets) per runUpdate call. */
    std::size_t subgroupCount() const;

    /** Peak FPGA device-memory use observed (bytes). */
    std::size_t peakDeviceMemory() const
    {
        return csd_.fpgaMemory().peakAllocated();
    }

  private:
    struct Buffers;

    void process(const compress::SparseGradient *sparse, uint64_t step,
                 float *host_params_out);

    csd::Csd &csd_;
    ShardLayout layout_;
    Config config_;
};

} // namespace smartinf::train

#endif // SMARTINF_TRAIN_TRANSFER_HANDLER_H
