#include "train/model_spec.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace smartinf::train {

const char *
familyName(ModelFamily family)
{
    switch (family) {
      case ModelFamily::Gpt2: return "GPT-2";
      case ModelFamily::Bert: return "BERT";
      case ModelFamily::Bloom: return "BLOOM";
      case ModelFamily::ViT: return "ViT";
    }
    return "?";
}

namespace {

/**
 * Depth heuristic spanning the published configurations (GPT-2 0.34B: 24
 * layers ... Megatron-scale 33B: ~96 layers): logarithmic growth in size.
 */
int
layersFor(double billions)
{
    const int layers =
        static_cast<int>(std::lround(40.0 + 16.0 * std::log(billions)));
    return std::clamp(layers, 12, 128);
}

/** Hidden dim from params ~= 12 * L * h^2 (transformer block cost). */
int
hiddenFor(double params, int layers)
{
    const double h = std::sqrt(params / (12.0 * layers));
    // Round to a multiple of 64 like real configurations.
    return std::max(256, static_cast<int>(std::lround(h / 64.0)) * 64);
}

ModelSpec
make(ModelFamily family, double billions)
{
    SI_REQUIRE(billions > 0.0, "model size must be positive");
    ModelSpec spec;
    spec.family = family;
    spec.num_params = billions * 1e9;
    spec.num_layers = layersFor(billions);
    spec.hidden_dim = hiddenFor(spec.num_params, spec.num_layers);
    std::ostringstream name;
    name << familyName(family) << " " << billions << "B";
    spec.name = name.str();
    return spec;
}

} // namespace

ModelSpec
ModelSpec::gpt2(double billions)
{
    return make(ModelFamily::Gpt2, billions);
}

ModelSpec
ModelSpec::bert(double billions)
{
    return make(ModelFamily::Bert, billions);
}

ModelSpec
ModelSpec::bloom(double billions)
{
    return make(ModelFamily::Bloom, billions);
}

ModelSpec
ModelSpec::vit(double billions)
{
    // Vision transformers are shallower/wider at equal size; the paper's
    // ViT runs (0.30B/0.63B) behave identically traffic-wise.
    ModelSpec spec = make(ModelFamily::ViT, billions);
    spec.num_layers = std::clamp(spec.num_layers * 2 / 3, 12, 64);
    spec.hidden_dim = hiddenFor(spec.num_params, spec.num_layers);
    return spec;
}

} // namespace smartinf::train
