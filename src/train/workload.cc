#include "train/workload.h"

#include "common/enum_names.h"

namespace smartinf::train {

const char *
workloadKindName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Training: return "training";
      case WorkloadKind::Serving: return "serving";
    }
    return "?";
}

std::optional<WorkloadKind>
workloadKindFromName(const std::string &name)
{
    return enumFromName(allWorkloadKinds(), workloadKindName, name);
}

std::vector<WorkloadKind>
allWorkloadKinds()
{
    return {WorkloadKind::Training, WorkloadKind::Serving};
}

double
WorkloadResult::totalOutputTokens() const
{
    double tokens = 0.0;
    for (const RequestRecord &r : requests)
        tokens += r.output_tokens;
    return tokens;
}

} // namespace smartinf::train
