#include "train/workload.h"

#include "common/enum_names.h"

namespace smartinf::train {

const char *
workloadKindName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Training: return "training";
      case WorkloadKind::Serving: return "serving";
    }
    return "?";
}

std::optional<WorkloadKind>
workloadKindFromName(const std::string &name)
{
    return enumFromName(allWorkloadKinds(), workloadKindName, name);
}

std::vector<WorkloadKind>
allWorkloadKinds()
{
    return {WorkloadKind::Training, WorkloadKind::Serving};
}

void
StreamingServeStats::note(const RequestRecord &record)
{
    ++total_requests;
    total_retries += record.retries;
    total_deferrals += record.deferrals;
    if (record.deferrals > 0)
        ++num_deferred;
    windows.record("arrivals", record.arrival, 1.0);
    windows.record("retirements", record.finish, 1.0);
    if (record.shed) {
        ++num_shed;
        shed_wait.record(record.finish - record.arrival);
        return;
    }
    if (record.rejected) {
        ++num_rejected;
        reject_wait.record(record.finish - record.arrival);
        return;
    }
    ++num_served;
    if (record.retries > 0)
        ++num_retried;
    if (record.node >= 0) {
        if (static_cast<std::size_t>(record.node) >= replica_requests.size())
            replica_requests.resize(static_cast<std::size_t>(record.node) + 1,
                                    0);
        ++replica_requests[static_cast<std::size_t>(record.node)];
    }
    latency.record(record.latency());
    ttft.record(record.timeToFirstToken());
    queue_delay.record(record.queueDelay());
    output_tokens += record.output_tokens;
    windows.record("latency_s", record.finish, record.latency());
}

double
WorkloadResult::totalOutputTokens() const
{
    double tokens = 0.0;
    for (const RequestRecord &r : requests)
        tokens += r.output_tokens;
    return tokens;
}

} // namespace smartinf::train
