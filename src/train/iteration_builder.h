/**
 * @file
 * The per-node training iteration builder: composes the shared phase
 * primitives (train/phase_builders.h) into one server's training iteration
 * — block parameter loads, GPU compute, gradient offloads, CSD-internal
 * swaps, FPGA updates — as tasks in a SimContext's shared task graph.
 * TrainingWorkload drives one builder per node in the *same* SimContext and
 * stitches inter-node gradient-sync collectives between their backward and
 * update phases, so NIC traffic contends with PCIe offload traffic in one
 * fluid-flow model.
 */
#ifndef SMARTINF_TRAIN_ITERATION_BUILDER_H
#define SMARTINF_TRAIN_ITERATION_BUILDER_H

#include <string>
#include <utility>
#include <vector>

#include "train/phase_builders.h"

namespace smartinf::train {

/**
 * Builds one node's training iteration into a shared SimContext.
 *
 * The build is staged so callers can interpose between phases: the
 * distributed training workload hangs each block's gradient offload off
 * that block's inter-node all-reduce by adding dependencies to
 * gradOffloadGateTask(b) before the graph starts.
 */
class IterationBuilder : public PhaseBuilder
{
  public:
    IterationBuilder(const ModelSpec &model, const TrainConfig &train,
                     const SystemConfig &system, SimContext &ctx,
                     std::string prefix = {});

    /** Build the forward phase; returns its completion barrier. */
    TaskId buildForward();
    /** Build backward + gradient offload; returns its completion barrier. */
    TaskId buildBackward(TaskId fw_done);
    /** Build the strategy-specific update phase gated on @p ready. */
    void buildUpdate(TaskId ready);

    /** Per-block task completing when the block's gradients reach host
     *  memory (wire format) — the natural anchor for gradient sync. */
    TaskId gradToHostTask(int block) const;
    /** Per-block task completing when the block's gradients are offloaded
     *  to storage. */
    TaskId gradOffloadTask(int block) const;
    /**
     * Per-block task gating the block's offload transfers: adding a
     * dependency here (before start()) holds the actual flows back — the
     * distributed training workload points it at the block's reduced
     * all-reduce bucket. For the baseline's striped offload this is a
     * barrier in front of the per-device parts; for Smart-Infinity it is
     * the single offload transfer itself.
     */
    TaskId gradOffloadGateTask(int block) const;

  private:
    Bytes activationBytesPerBlock() const;
    bool compressed() const;
    Bytes gradWireBytesPerBlock() const;

    void tpAllReduce(TaskId after_compute, sim::TaskLabel label);
    /** Returns {gate, completion} for one block's offload (see
     *  gradOffloadGateTask). */
    std::pair<TaskId, TaskId> buildGradOffload(int block);
    void buildBaselineUpdate(TaskId ready);
    void buildSmartUpdate(TaskId ready);
    void buildCsdChain(int d, TaskId ready, double params_per_csd,
                       int num_subgroups, int aux);

    const TrainConfig &train_;
    std::vector<TaskId> grad_to_host_;
    std::vector<TaskId> grad_offload_gate_;
    std::vector<TaskId> grad_offload_;
};

} // namespace smartinf::train

#endif // SMARTINF_TRAIN_ITERATION_BUILDER_H
