/**
 * @file
 * The per-node iteration builder extracted from the engines so higher layers
 * can compose it. One IterationBuilder expresses one server's training
 * iteration (block loads, GPU compute, gradient offloads, CSD-internal
 * swaps, FPGA updates, ...) as tasks in a SimContext's shared task graph.
 * The single-node engines drive exactly one builder; dist::DistributedEngine
 * drives one per node in the *same* SimContext and stitches inter-node
 * gradient-sync collectives between their backward and update phases, so
 * NIC traffic contends with PCIe offload traffic in one fluid-flow model.
 */
#ifndef SMARTINF_TRAIN_ITERATION_BUILDER_H
#define SMARTINF_TRAIN_ITERATION_BUILDER_H

#include <memory>
#include <string>
#include <vector>

#include "net/flow_network.h"
#include "net/topology.h"
#include "sim/resource.h"
#include "sim/task_graph.h"
#include "train/engine.h"

namespace smartinf::train {

/**
 * Shared simulation substrate for one iteration: the event queue, the flow
 * network, the link registry, the task graph, and the traffic ledger every
 * participating node accumulates into. Rebuilt per runIteration().
 */
struct SimContext {
    explicit SimContext(const SystemConfig &system)
        : system(system), net(sim), graph(sim)
    {
    }

    const SystemConfig &system;
    sim::Simulator sim;
    net::FlowNetwork net;
    net::Topology topo;
    sim::TaskGraph graph;
    TrafficLedger traffic;

    /** Add a flow-transfer task. */
    sim::TaskGraph::TaskId transfer(net::Route route, Bytes bytes,
                                    sim::TaskLabel label = {});
};

/**
 * Builds one node's iteration into a shared SimContext. Link and resource
 * names are prefixed with @p prefix ("" for single-node runs, "n3." for
 * node 3 of a cluster), so any number of builders coexist in one topology.
 *
 * The build is staged so callers can interpose between phases: the
 * distributed engine hangs each block's gradient offload off that block's
 * inter-node all-reduce by adding dependencies to gradOffloadTask(b) before
 * the graph starts.
 */
class IterationBuilder
{
  public:
    using TaskId = sim::TaskGraph::TaskId;

    IterationBuilder(const ModelSpec &model, const TrainConfig &train,
                     const SystemConfig &system, SimContext &ctx,
                     std::string prefix = {});

    /** Build the forward phase; returns its completion barrier. */
    TaskId buildForward();
    /** Build backward + gradient offload; returns its completion barrier. */
    TaskId buildBackward(TaskId fw_done);
    /** Build the strategy-specific update phase gated on @p ready. */
    void buildUpdate(TaskId ready);

    /** Per-block task completing when the block's gradients reach host
     *  memory (wire format) — the natural anchor for gradient sync. */
    TaskId gradToHostTask(int block) const;
    /** Per-block task completing when the block's gradients are offloaded
     *  to storage. */
    TaskId gradOffloadTask(int block) const;
    /**
     * Per-block task gating the block's offload transfers: adding a
     * dependency here (before start()) holds the actual flows back — the
     * distributed engine points it at the block's reduced all-reduce
     * bucket. For the baseline's striped offload this is a barrier in
     * front of the per-device parts; for Smart-Infinity it is the single
     * offload transfer itself.
     */
    TaskId gradOffloadGateTask(int block) const;

  private:
    void buildResources();
    std::string pfx(const std::string &name) const { return prefix_ + name; }
    net::Link *link(const std::string &name) { return &ctx_.topo.link(pfx(name)); }

    TaskId internalTransfer(int d, Bytes bytes, BytesPerSec p2p_rate,
                            BytesPerSec media_rate, sim::TaskLabel label);
    net::Route gpuDown();
    net::Route gpuUp();
    net::Route ssdWriteRoute(int d);
    net::Route ssdReadRoute(int d);

    double paramsPerBlock() const;
    Bytes activationBytesPerBlock() const;
    bool compressed() const;
    Bytes gradWireBytesPerBlock() const;

    void tpAllReduce(TaskId after_compute, sim::TaskLabel label);
    /** Returns {gate, completion} for one block's offload (see
     *  gradOffloadGateTask). */
    std::pair<TaskId, TaskId> buildGradOffload(int block);
    void buildBaselineUpdate(TaskId ready);
    void buildSmartUpdate(TaskId ready);
    void buildCsdChain(int d, TaskId ready, double params_per_csd,
                       int num_subgroups, int aux);

    const ModelSpec &model_;
    const TrainConfig &train_;
    const SystemConfig &system_;
    SimContext &ctx_;
    std::string prefix_;
    std::unique_ptr<sim::Resource> gpu_;
    std::unique_ptr<sim::Resource> cpu_;
    std::vector<std::unique_ptr<sim::Resource>> fpga_;
    std::vector<std::unique_ptr<sim::Resource>> dma_;
    std::vector<TaskId> grad_to_host_;
    std::vector<TaskId> grad_offload_gate_;
    std::vector<TaskId> grad_offload_;
};

/** Build and run one single-node iteration (shared by both engines). */
IterationResult runSingleNodeIteration(const ModelSpec &model,
                                       const TrainConfig &train,
                                       const SystemConfig &system);

} // namespace smartinf::train

#endif // SMARTINF_TRAIN_ITERATION_BUILDER_H
