/**
 * @file
 * Calibration constants for the performance model, each anchored to a
 * measurement the paper reports. Absolute seconds are not the goal (our
 * substrate is a simulator, not the authors' testbed); these constants are
 * chosen so the *shapes* hold: update >= ~75-80% of baseline iteration time
 * (Fig 3a), RAID0 saturating around 4 SSDs (Fig 3b), updater > 7 GB/s and
 * decompressor ~ SSD read (Fig 14), and the Fig 9/11 speedup bands.
 */
#ifndef SMARTINF_TRAIN_CALIBRATION_H
#define SMARTINF_TRAIN_CALIBRATION_H

#include "common/units.h"

namespace smartinf::train {

/** Tunable bandwidth/latency constants of the modeled system. */
struct Calibration {
    /** Sequential read of one SmartSSD NVMe (Fig 14 "SSD Read"). */
    BytesPerSec ssd_read = GBps(3.2);
    /** Sequential write of one SmartSSD NVMe (Fig 14 "SSD Write"). */
    BytesPerSec ssd_write = GBps(2.0);

    /**
     * Per-member efficiency of the baseline's software RAID0 (mdadm chunk
     * striping + aio swapper access patterns achieve ~75% of raw sequential
     * media bandwidth). Smart-Infinity bypasses the RAID with direct
     * pread/pwrite P2P, so this applies to the baseline only. Calibrated to
     * the Fig 3(b) saturation curve (~2.4x, knee at ~4 SSDs).
     */
    double raid_efficiency = 0.75;

    /**
     * Per-device external PCIe Gen3 x4 link, per direction (raw 3.94 GB/s,
     * effective after protocol overhead).
     */
    BytesPerSec device_link = GBps(3.3);

    /**
     * Effective shared system-interconnect bandwidth per direction for
     * storage traffic (PCIe Gen3 x16 raw 15.75 GB/s; software RAID, aio and
     * pinned-buffer staging lower the achievable rate — calibrated to the
     * RAID0 saturation knee of Fig 3b).
     */
    BytesPerSec host_shared = GBps(6.0);

    /** Host DRAM bandwidth seen by GPU DMA (paper Fig 2: 16 GB/s). */
    BytesPerSec host_memory = GBps(16.0);

    /** GPU PCIe x16 link per direction (parameter/activation loads). */
    BytesPerSec gpu_link = GBps(12.0);

    /**
     * CSD-internal P2P effective rates (SSD <-> FPGA DRAM through the
     * internal switch). Transfers are issued by a single OpenCL P2P engine
     * per device, so reads and writes serialize on one DMA queue; the rate
     * applied to each transfer is min(p2p rate, media rate).
     */
    BytesPerSec p2p_read = GBps(3.0);
    BytesPerSec p2p_write = GBps(2.0);

    /**
     * Host CPU (AVX) optimizer-update throughput in *read-side* state bytes
     * per second (DeepSpeed CPU-Adam class performance on a 2-socket Xeon).
     */
    BytesPerSec cpu_update = GBps(5.0);

    /** GPU-side Top-K compression throughput (sort + pack), bytes/s. */
    BytesPerSec gpu_compress = GBps(80.0);

    /** FPGA updater throughput in state-stream bytes/s (Fig 14: > 7 GB/s). */
    BytesPerSec fpga_updater = GBps(7.2);
    /** FPGA Top-K decompressor throughput in output bytes/s (Fig 14). */
    BytesPerSec fpga_decomp = GBps(3.6);

    /** Fixed latency per bulk transfer (syscall + DMA setup). */
    Seconds transfer_latency = 150e-6;
    /** Fixed latency per FPGA kernel invocation (OpenCL enqueue). */
    Seconds kernel_launch = 80e-6;

    /** Usable fraction of FPGA DRAM for subgroup buffers. */
    double fpga_dram_usable = 0.8;

    static const Calibration &defaults();
};

} // namespace smartinf::train

#endif // SMARTINF_TRAIN_CALIBRATION_H
