#include "train/cost_model.h"

namespace smartinf::train {

double
systemCost(const SystemConfig &system, const CostTable &costs)
{
    const double storage_unit = strategyUsesCsd(system.strategy)
                                    ? costs.smart_ssd
                                    : costs.plain_ssd;
    return costs.server + system.num_devices * storage_unit +
           system.num_gpus * GpuModel::get(system.gpu).cost_usd;
}

double
achievedGflops(const ModelSpec &model, const TrainConfig &train,
               const IterationResult &result)
{
    const Flops per_iter =
        model.flopsPerToken() * train.tokensPerIteration();
    return per_iter / result.iteration_time / kGiga;
}

double
gflopsPerDollar(const ModelSpec &model, const TrainConfig &train,
                const SystemConfig &system, const IterationResult &result,
                const CostTable &costs)
{
    return achievedGflops(model, train, result) / systemCost(system, costs);
}

} // namespace smartinf::train
