/**
 * @file
 * Model presets: parameter counts and block (layer) structure for every
 * model size the paper evaluates. Because storage-offloaded training
 * flattens parameters and is bottlenecked by traffic proportional to the
 * parameter count, the spec needs only coarse architecture data — exactly
 * the property the paper exploits ("the distribution procedure is agnostic
 * to the model architecture", §IV-D).
 */
#ifndef SMARTINF_TRAIN_MODEL_SPEC_H
#define SMARTINF_TRAIN_MODEL_SPEC_H

#include <string>

#include "common/units.h"

namespace smartinf::train {

/** Transformer family label (affects nothing but reporting — see Fig 13). */
enum class ModelFamily { Gpt2, Bert, Bloom, ViT };

const char *familyName(ModelFamily family);

/** A model to train. */
struct ModelSpec {
    std::string name;
    ModelFamily family = ModelFamily::Gpt2;
    /** Total trainable parameters. */
    double num_params = 0.0;
    /** Transformer blocks == offloading granularity. */
    int num_layers = 0;
    /** Hidden dimension (activation-size estimate; tensor parallelism). */
    int hidden_dim = 0;

    /** FP16 model bytes — the paper's M. */
    Bytes modelBytes() const { return num_params * kBytesFp16; }
    /** FP32 gradient bytes — the paper's 2M. */
    Bytes gradientBytes() const { return num_params * kBytesFp32; }

    /** FW+BW FLOPs per token (the standard 6 * params estimate). */
    Flops flopsPerToken() const { return 6.0 * num_params; }

    /** Presets parameterized by billions of parameters. */
    static ModelSpec gpt2(double billions);
    static ModelSpec bert(double billions);
    static ModelSpec bloom(double billions);
    static ModelSpec vit(double billions);
};

/** Per-iteration workload. */
struct TrainConfig {
    int batch_size = 4;    ///< paper default (§VII-A)
    int seq_len = 1024;    ///< tokens per sample

    double tokensPerIteration() const
    {
        return static_cast<double>(batch_size) * seq_len;
    }
};

} // namespace smartinf::train

#endif // SMARTINF_TRAIN_MODEL_SPEC_H
