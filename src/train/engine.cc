#include "train/engine.h"

#include "common/logging.h"
#include "dist/distributed_engine.h"
#include "obs/observation.h"
#include "train/sim_context.h"
#include "train/training_workload.h"

namespace smartinf::train {

TrafficLedger &
TrafficLedger::operator+=(const TrafficLedger &other)
{
    shared_opt_read += other.shared_opt_read;
    shared_opt_write += other.shared_opt_write;
    shared_grad_read += other.shared_grad_read;
    shared_grad_write += other.shared_grad_write;
    shared_param_up += other.shared_param_up;
    internal_read += other.internal_read;
    internal_write += other.internal_write;
    internode_tx += other.internode_tx;
    internode_rx += other.internode_rx;
    kv_spill_read += other.kv_spill_read;
    kv_spill_write += other.kv_spill_write;
    return *this;
}

Engine::Engine(const ModelSpec &model, const TrainConfig &train,
               const SystemConfig &system)
    : model_(model), train_(train), system_(system)
{
    SI_REQUIRE(model.num_params > 0 && model.num_layers > 0,
               "invalid model spec");
    const auto errors = system.validate();
    SI_REQUIRE(errors.empty(), "invalid SystemConfig: ",
               joinErrors(errors));
}

WorkloadResult
Engine::run(Workload &workload)
{
    SimContext ctx(system_);

    // Opt-in observability: when a session is installed (smartinf_bench
    // --trace/--metrics), record this run. Purely passive — the observers
    // schedule nothing, so events_executed and every simulated timestamp
    // are bit-identical with and without a session (pinned by tests).
    obs::Observation *session = obs::Observation::current();
    std::unique_ptr<obs::RunObservation> watch;
    if (session) {
        watch = session->beginRun(name() + " / " + workload.name(), ctx.sim,
                                  ctx.net);
        ctx.obs = watch.get();
    }

    workload.build(ctx);
    ctx.graph.start();
    ctx.sim.run();
    SI_ASSERT(ctx.graph.done(), "workload graph did not drain");

    WorkloadResult result;
    result.kind = workload.kind();
    workload.collect(ctx, result);
    result.traffic = ctx.traffic;
    result.events_executed = ctx.sim.eventsExecuted();

    if (watch) {
        ctx.obs = nullptr;
        session->finishRun(std::move(watch));
    }
    return result;
}

IterationResult
Engine::runIteration()
{
    TrainingWorkload workload(model_, train_);
    return run(workload);
}

std::string
engineDisplayName(Strategy strategy)
{
    if (strategy == Strategy::Baseline)
        return "ZeRO-Infinity (RAID0)";
    return std::string("Smart-Infinity (") + strategyName(strategy) + ")";
}

namespace {

/** Engine wrapper for the baseline strategy. */
class BaselineEngine final : public Engine
{
  public:
    using Engine::Engine;

    std::string name() const override
    {
        return engineDisplayName(system_.strategy);
    }
};

/** Engine wrapper for the Smart-Infinity strategies. */
class SmartEngine final : public Engine
{
  public:
    using Engine::Engine;

    std::string
    name() const override
    {
        return engineDisplayName(system_.strategy);
    }
};

} // namespace

std::unique_ptr<Engine>
makeEngine(const ModelSpec &model, const TrainConfig &train,
           const SystemConfig &system)
{
    if (system.num_nodes > 1)
        return std::make_unique<dist::DistributedEngine>(model, train,
                                                         system);
    if (system.strategy == Strategy::Baseline)
        return std::make_unique<BaselineEngine>(model, train, system);
    return std::make_unique<SmartEngine>(model, train, system);
}

SpeedupResult
runWithSpeedup(const ModelSpec &model, const TrainConfig &train,
               const SystemConfig &system)
{
    SpeedupResult out;
    out.result = makeEngine(model, train, system)->runIteration();

    SystemConfig base = system;
    base.strategy = Strategy::Baseline;
    out.baseline = makeEngine(model, train, base)->runIteration();
    out.speedup = out.baseline.iteration_time / out.result.iteration_time;
    return out;
}

} // namespace smartinf::train
