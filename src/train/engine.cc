#include "train/engine.h"

#include "common/logging.h"
#include "dist/distributed_engine.h"
#include "train/iteration_builder.h"

namespace smartinf::train {

TrafficLedger &
TrafficLedger::operator+=(const TrafficLedger &other)
{
    shared_opt_read += other.shared_opt_read;
    shared_opt_write += other.shared_opt_write;
    shared_grad_read += other.shared_grad_read;
    shared_grad_write += other.shared_grad_write;
    shared_param_up += other.shared_param_up;
    internal_read += other.internal_read;
    internal_write += other.internal_write;
    internode_tx += other.internode_tx;
    internode_rx += other.internode_rx;
    return *this;
}

Engine::Engine(const ModelSpec &model, const TrainConfig &train,
               const SystemConfig &system)
    : model_(model), train_(train), system_(system)
{
    SI_REQUIRE(model.num_params > 0 && model.num_layers > 0,
               "invalid model spec");
    const auto errors = system.validate();
    SI_REQUIRE(errors.empty(), "invalid SystemConfig: ",
               joinErrors(errors));
}

std::string
engineDisplayName(Strategy strategy)
{
    if (strategy == Strategy::Baseline)
        return "ZeRO-Infinity (RAID0)";
    return std::string("Smart-Infinity (") + strategyName(strategy) + ")";
}

namespace {

/** Engine wrapper for the baseline strategy. */
class BaselineEngine final : public Engine
{
  public:
    using Engine::Engine;

    IterationResult
    runIteration() override
    {
        return runSingleNodeIteration(model_, train_, system_);
    }

    std::string name() const override { return engineDisplayName(system_.strategy); }
};

/** Engine wrapper for the Smart-Infinity strategies. */
class SmartEngine final : public Engine
{
  public:
    using Engine::Engine;

    IterationResult
    runIteration() override
    {
        return runSingleNodeIteration(model_, train_, system_);
    }

    std::string
    name() const override
    {
        return engineDisplayName(system_.strategy);
    }
};

} // namespace

std::unique_ptr<Engine>
makeEngine(const ModelSpec &model, const TrainConfig &train,
           const SystemConfig &system)
{
    if (system.num_nodes > 1)
        return std::make_unique<dist::DistributedEngine>(model, train,
                                                         system);
    if (system.strategy == Strategy::Baseline)
        return std::make_unique<BaselineEngine>(model, train, system);
    return std::make_unique<SmartEngine>(model, train, system);
}

SpeedupResult
runWithSpeedup(const ModelSpec &model, const TrainConfig &train,
               const SystemConfig &system)
{
    SpeedupResult out;
    out.result = makeEngine(model, train, system)->runIteration();

    SystemConfig base = system;
    base.strategy = Strategy::Baseline;
    out.baseline = makeEngine(model, train, base)->runIteration();
    out.speedup = out.baseline.iteration_time / out.result.iteration_time;
    return out;
}

} // namespace smartinf::train
