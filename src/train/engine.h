/**
 * @file
 * The storage-offloaded engines. An Engine models one system shape (the
 * ZeRO-Infinity RAID0 baseline or a Smart-Infinity CSD configuration,
 * single- or multi-node) and executes *workloads* on it: run(Workload&) is
 * the single execution entry point — it owns the SimContext lifecycle
 * (build, simulate, collect) for any workload. Training is one such
 * workload (TrainingWorkload); runIteration() is the training shorthand
 * and produces bit-identical results to the pre-Workload engines.
 *
 * BaselineEngine reproduces the ZeRO-Infinity dataflow (Fig 1): block-wise
 * FW/BW with gradient offload to a software RAID0, then a CPU update phase
 * streaming optimizer states over the shared interconnect. SmartEngine
 * implements Smart-Infinity (Fig 4/6): per-CSD near-storage updates over
 * internal P2P links, with the naive or optimized transfer handler (Fig 5)
 * and optional SmartComp compression.
 *
 * One workload is expressed as a task graph of compute jobs (GPU, CPU,
 * FPGA) and fluid flows (PCIe links); overlap and contention fall out of
 * the dependency structure and the max-min flow model.
 */
#ifndef SMARTINF_TRAIN_ENGINE_H
#define SMARTINF_TRAIN_ENGINE_H

#include <memory>
#include <string>
#include <vector>

#include "train/model_spec.h"
#include "train/system_config.h"
#include "train/traffic_ledger.h"
#include "train/workload.h"

namespace smartinf::train {

/**
 * Result of simulating one training iteration — the training-era name for
 * a WorkloadResult (phases populated, request records empty).
 */
using IterationResult = WorkloadResult;

/** Common interface of both engines. */
class Engine
{
  public:
    Engine(const ModelSpec &model, const TrainConfig &train,
           const SystemConfig &system);
    virtual ~Engine() = default;

    /**
     * THE execution entry point: build @p workload into a fresh
     * SimContext, run the simulator until it drains, and collect the
     * result. Deterministic: a pure function of (workload, engine
     * config).
     */
    WorkloadResult run(Workload &workload);

    /**
     * Simulate one steady-state training iteration — shorthand for
     * run(TrainingWorkload) with this engine's model and train config.
     * Deterministic.
     */
    virtual IterationResult runIteration();

    virtual std::string name() const = 0;

    const ModelSpec &model() const { return model_; }
    const SystemConfig &system() const { return system_; }
    const TrainConfig &train() const { return train_; }

  protected:
    ModelSpec model_;
    TrainConfig train_;
    SystemConfig system_;
};

/** Human-readable single-node engine name for @p strategy (bench labels). */
std::string engineDisplayName(Strategy strategy);

/**
 * The one engine factory: instantiate the engine matching
 * @c system.strategy, dispatching to the multi-node
 * dist::DistributedEngine when @c system.num_nodes > 1. Callers never
 * need to name src/dist/ types — the node count alone selects the
 * scale-out path.
 */
std::unique_ptr<Engine> makeEngine(const ModelSpec &model,
                                   const TrainConfig &train,
                                   const SystemConfig &system);

/**
 * Thin wrapper over makeEngine(): run one iteration of @p system and of a
 * baseline with the same model/devices/nodes, returning
 * (result, speedup-over-baseline).
 */
struct SpeedupResult {
    IterationResult result;
    IterationResult baseline;
    double speedup = 1.0;
};
SpeedupResult runWithSpeedup(const ModelSpec &model, const TrainConfig &train,
                             const SystemConfig &system);

} // namespace smartinf::train

#endif // SMARTINF_TRAIN_ENGINE_H
