/**
 * @file
 * The storage-offloaded training engines. BaselineEngine reproduces the
 * ZeRO-Infinity dataflow (Fig 1): block-wise FW/BW with gradient offload to
 * a software RAID0, then a CPU update phase streaming optimizer states over
 * the shared interconnect. SmartEngine implements Smart-Infinity (Fig 4/6):
 * per-CSD near-storage updates over internal P2P links, with the naive or
 * optimized transfer handler (Fig 5) and optional SmartComp compression.
 *
 * One iteration is expressed as a task graph of compute jobs (GPU, CPU,
 * FPGA) and fluid flows (PCIe links); overlap and contention fall out of
 * the dependency structure and the max-min flow model.
 */
#ifndef SMARTINF_TRAIN_ENGINE_H
#define SMARTINF_TRAIN_ENGINE_H

#include <memory>
#include <string>
#include <vector>

#include "train/model_spec.h"
#include "train/system_config.h"
#include "train/traffic_ledger.h"

namespace smartinf::train {

/** Wall-clock split of one iteration into the paper's three phases. */
struct PhaseBreakdown {
    Seconds forward = 0.0;
    /** Backward compute + gradient offload (paper "BW+Grad. Offload"). */
    Seconds backward = 0.0;
    /** Update + optimizer-state upload/offload. */
    Seconds update = 0.0;

    Seconds total() const { return forward + backward + update; }
};

/** Result of simulating one training iteration. */
struct IterationResult {
    PhaseBreakdown phases;
    TrafficLedger traffic;
    /** Iteration wall-clock (== phases.total()). */
    Seconds iteration_time = 0.0;
    /** Discrete events the simulator executed for this iteration — the
     *  denominator of the perf harness's events/sec metric. */
    uint64_t events_executed = 0;
};

/** Common interface of both engines. */
class Engine
{
  public:
    Engine(const ModelSpec &model, const TrainConfig &train,
           const SystemConfig &system);
    virtual ~Engine() = default;

    /** Simulate one steady-state training iteration. Deterministic. */
    virtual IterationResult runIteration() = 0;

    virtual std::string name() const = 0;

    const ModelSpec &model() const { return model_; }
    const SystemConfig &system() const { return system_; }
    const TrainConfig &train() const { return train_; }

  protected:
    ModelSpec model_;
    TrainConfig train_;
    SystemConfig system_;
};

/** Human-readable single-node engine name for @p strategy (bench labels). */
std::string engineDisplayName(Strategy strategy);

/**
 * The one engine factory: instantiate the engine matching
 * @c system.strategy, dispatching to the multi-node
 * dist::DistributedEngine when @c system.num_nodes > 1. Callers never
 * need to name src/dist/ types — the node count alone selects the
 * scale-out path.
 */
std::unique_ptr<Engine> makeEngine(const ModelSpec &model,
                                   const TrainConfig &train,
                                   const SystemConfig &system);

/**
 * Thin wrapper over makeEngine(): run one iteration of @p system and of a
 * baseline with the same model/devices/nodes, returning
 * (result, speedup-over-baseline).
 */
struct SpeedupResult {
    IterationResult result;
    IterationResult baseline;
    double speedup = 1.0;
};
SpeedupResult runWithSpeedup(const ModelSpec &model, const TrainConfig &train,
                             const SystemConfig &system);

} // namespace smartinf::train

#endif // SMARTINF_TRAIN_ENGINE_H
