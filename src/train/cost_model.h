/**
 * @file
 * System cost-efficiency model (paper §VII-I, Fig 15): GFLOPS/$ for the
 * baseline (plain SSDs) and Smart-Infinity (SmartSSDs), using the paper's
 * quoted component prices.
 */
#ifndef SMARTINF_TRAIN_COST_MODEL_H
#define SMARTINF_TRAIN_COST_MODEL_H

#include "train/engine.h"

namespace smartinf::train {

/** Component prices (USD), quoted in §VII-I. */
struct CostTable {
    double server = 45000.0;    ///< CPU, RAM, PCIe expansion, chassis
    double plain_ssd = 400.0;   ///< 4 TB NVMe
    double smart_ssd = 2400.0;  ///< SmartSSD (~6x the plain SSD)
    // GPU prices come from GpuModel::cost_usd.
};

/** Total system cost for a configuration. */
double systemCost(const SystemConfig &system, const CostTable &costs = {});

/**
 * Achieved training GFLOPS for one iteration result (model FLOPs per
 * iteration divided by iteration time).
 */
double achievedGflops(const ModelSpec &model, const TrainConfig &train,
                      const IterationResult &result);

/** The Fig 15 metric. */
double gflopsPerDollar(const ModelSpec &model, const TrainConfig &train,
                       const SystemConfig &system,
                       const IterationResult &result,
                       const CostTable &costs = {});

} // namespace smartinf::train

#endif // SMARTINF_TRAIN_COST_MODEL_H
