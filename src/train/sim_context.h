/**
 * @file
 * Shared simulation substrate for one workload run: the event queue, the
 * flow network, the link registry, the task graph, and the traffic ledger
 * every participating node accumulates into. One SimContext is rebuilt per
 * Engine::run(); every node of a multi-node workload builds into the same
 * context so all flows contend in one fluid-flow model.
 */
#ifndef SMARTINF_TRAIN_SIM_CONTEXT_H
#define SMARTINF_TRAIN_SIM_CONTEXT_H

#include "net/flow_network.h"
#include "net/topology.h"
#include "sim/task_graph.h"
#include "train/system_config.h"
#include "train/traffic_ledger.h"

namespace smartinf::obs {
class RunObservation;
}

namespace smartinf::train {

/** Shared simulation substrate for one workload run. */
struct SimContext {
    explicit SimContext(const SystemConfig &system)
        : system(system), net(sim), graph(sim)
    {
    }

    const SystemConfig &system;
    sim::Simulator sim;
    net::FlowNetwork net;
    net::Topology topo;
    sim::TaskGraph graph;
    TrafficLedger traffic;

    /**
     * Per-run observability recorder, or nullptr (the default — engines
     * only set it while an obs::Observation session is installed). Layers
     * with semantic events the sim/net hooks cannot see (the serve
     * scheduler and builders) report through it when non-null. Purely
     * passive: never affects tasks, flows, or timing.
     */
    obs::RunObservation *obs = nullptr;

    /**
     * True while a fault-injecting workload drives this context. When set,
     * transfer() registers a canceller with the task graph for every flow
     * it starts, so revoking a domain pulls its in-flight flows out of the
     * network. Off by default: fault-free runs pay nothing (one branch per
     * flow start, no canceller storage) and stay bit-identical.
     */
    bool faults_armed = false;

    /** Add a flow-transfer task. */
    sim::TaskGraph::TaskId transfer(net::Route route, Bytes bytes,
                                    sim::TaskLabel label = {});
};

} // namespace smartinf::train

#endif // SMARTINF_TRAIN_SIM_CONTEXT_H
