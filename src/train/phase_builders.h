/**
 * @file
 * The reusable per-node phase-builder substrate, split out of the training
 * iteration builder so any workload can compose the same hardware model.
 * A PhaseBuilder owns one node's simulated resources (GPU, host CPU, FPGA
 * kernel engines, CSD DMA queues), its link routes through the shared
 * topology, and the phase primitives every workload is made of: parameter
 * fetch (from host memory or striped/owner-device storage), block compute,
 * and storage offload. train::IterationBuilder composes them into a
 * training iteration; serve::InferenceBuilder composes them into
 * prefill/decode forward passes with layer-wise parameter streaming.
 *
 * Link and resource names are prefixed with @p prefix ("" for single-node
 * runs, "n3." for node 3 of a cluster), so any number of builders coexist
 * in one topology.
 */
#ifndef SMARTINF_TRAIN_PHASE_BUILDERS_H
#define SMARTINF_TRAIN_PHASE_BUILDERS_H

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/resource.h"
#include "train/model_spec.h"
#include "train/sim_context.h"

namespace smartinf::train {

/** Shared per-node substrate + phase primitives (see file comment). */
class PhaseBuilder
{
  public:
    using TaskId = sim::TaskGraph::TaskId;

    /** Builds the node's links and resources into @p ctx. */
    PhaseBuilder(const ModelSpec &model, const SystemConfig &system,
                 SimContext &ctx, std::string prefix = {});

    /** @name Phase primitives. @{ */
    /** Host memory -> GPU transfer (parameter/activation loads). */
    TaskId hostToGpu(Bytes bytes, sim::TaskLabel label);
    /** GPU -> host memory transfer (activations, gradients). */
    TaskId gpuToHost(Bytes bytes, sim::TaskLabel label);
    /** GPU compute of @p work FLOPs (serialized on the node's GPU). */
    TaskId gpuCompute(Flops work, sim::TaskLabel label);
    /** Read @p bytes from device @p d's media into host memory. */
    TaskId storageRead(int d, Bytes bytes, sim::TaskLabel label);
    /** Write @p bytes from host memory to device @p d's media. */
    TaskId storageWrite(int d, Bytes bytes, sim::TaskLabel label);
    /**
     * RAID0-striped read of @p bytes (1/D per device, all devices in
     * parallel) into host memory. Returns {gate, join}: the per-device
     * stripes hang off the gate barrier (attach extra dependencies there)
     * and the join barrier completes when every stripe landed.
     */
    std::pair<TaskId, TaskId> storageReadStriped(Bytes bytes,
                                                 sim::TaskLabel label);
    /** @} */

    const ModelSpec &model() const { return model_; }
    const SystemConfig &system() const { return system_; }
    SimContext &ctx() { return ctx_; }

    /** Parameters per transformer block (the offload granularity). */
    double paramsPerBlock() const
    {
        return model_.num_params / model_.num_layers;
    }

    /** The GPU resource's work rate (FLOP/s), for converting byte-rate
     *  calibrations into compute work. */
    double gpuRate() const { return gpu_->rate(); }

  protected:
    std::string pfx(const std::string &name) const { return prefix_ + name; }
    net::Link *link(const std::string &name)
    {
        return &ctx_.topo.link(pfx(name));
    }

    /** Internal P2P transfer as work (seconds) on CSD @p d's DMA engine. */
    TaskId internalTransfer(int d, Bytes bytes, BytesPerSec p2p_rate,
                            BytesPerSec media_rate, sim::TaskLabel label);

    net::Route gpuDown();
    net::Route gpuUp();
    net::Route ssdWriteRoute(int d);
    net::Route ssdReadRoute(int d);

    const ModelSpec &model_;
    const SystemConfig &system_;
    SimContext &ctx_;
    std::string prefix_;
    std::unique_ptr<sim::Resource> gpu_;
    std::unique_ptr<sim::Resource> cpu_;
    std::vector<std::unique_ptr<sim::Resource>> fpga_;
    std::vector<std::unique_ptr<sim::Resource>> dma_;

  private:
    void buildResources();
};

} // namespace smartinf::train

#endif // SMARTINF_TRAIN_PHASE_BUILDERS_H
