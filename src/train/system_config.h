/**
 * @file
 * Experiment configuration: strategy (the paper's BASE / SU / SU+O /
 * SU+O+C), device counts, GPU grade, topology shape, optimizer,
 * compression ratio, and the data-parallel scale-out shape (node count
 * and NIC link specs consumed by src/dist/).
 */
#ifndef SMARTINF_TRAIN_SYSTEM_CONFIG_H
#define SMARTINF_TRAIN_SYSTEM_CONFIG_H

#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "optim/optimizer.h"
#include "train/calibration.h"
#include "train/gpu_model.h"

namespace smartinf::train {

/** Training strategy under evaluation (paper §VII-A notation). */
enum class Strategy {
    Baseline,          ///< ZeRO-Infinity-like, software RAID0, CPU update
    SmartUpdate,       ///< SU: near-storage update, naive transfer handling
    SmartUpdateOpt,    ///< SU+O: + internal data transfer handler (§IV-B)
    SmartUpdateOptComp ///< SU+O+C: + SmartComp gradient compression (§IV-C)
};

const char *strategyName(Strategy strategy);

/**
 * Inverse of strategyName(): parses the paper notation ("BASE", "SU",
 * "SU+O", "SU+O+C", case-insensitive). Returns nullopt for unknown names.
 */
std::optional<Strategy> strategyFromName(const std::string &name);

/** Every strategy, in declaration order (sweep axes, exhaustive tests). */
std::vector<Strategy> allStrategies();

/** Join a validate() error list into one "a; b; c" message. */
std::string joinErrors(const std::vector<std::string> &errors);

/** True for the strategies that run updates on CSDs. */
inline bool
strategyUsesCsd(Strategy strategy)
{
    return strategy != Strategy::Baseline;
}

/** Full system configuration for one experiment. */
struct SystemConfig {
    Strategy strategy = Strategy::Baseline;
    /** SSD count for the baseline RAID0, CSD count for Smart-Infinity. */
    int num_devices = 6;
    GpuGrade gpu = GpuGrade::A5000;
    int num_gpus = 1;
    /**
     * Fig 17 topology: GPUs live in the same PCIe expansion as the CSDs, so
     * model/activation traffic contends with storage traffic on the shared
     * interconnect. Multi-GPU runs use tensor parallelism.
     */
    bool congested_topology = false;
    optim::OptimizerKind optimizer = optim::OptimizerKind::Adam;
    /**
     * SmartComp wire volume as a fraction of the dense FP32 gradients (the
     * paper's c%; default 2% = top-1% selection with index+value pairs).
     */
    double compression_wire_fraction = 0.02;
    Calibration calib = Calibration::defaults();

    /** @name Multi-node data-parallel scale-out (src/dist/). @{ */
    /** Identical servers training data-parallel; 1 = the paper's testbed. */
    int num_nodes = 1;
    /** Per-direction NIC bandwidth per node (default 100 GbE). */
    BytesPerSec nic_bandwidth = GBps(12.5);
    /** Per-hop NIC/switch propagation latency. */
    Seconds nic_latency = 10e-6;
    /**
     * Bucket the gradient all-reduce per transformer block and launch each
     * bucket as soon as every node produced that block's gradients, so the
     * sync overlaps backward; false = one monolithic all-reduce after
     * backward completes (for ablating the overlap).
     */
    bool overlap_grad_sync = true;
    /** @} */

    /**
     * Check the configuration for user errors. Returns every violated
     * precondition as an actionable message ("num_devices must be >= 1,
     * got 0"); an empty vector means the config is usable. Engine
     * construction calls this and reports the first error via fatal()
     * instead of asserting deep inside construction.
     */
    std::vector<std::string> validate() const;
};

} // namespace smartinf::train

#endif // SMARTINF_TRAIN_SYSTEM_CONFIG_H
