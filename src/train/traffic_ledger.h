/**
 * @file
 * Per-iteration traffic accounting, categorized the way the paper's Table I
 * is: optimizer-state reads/writes, gradient reads/writes, and parameter
 * upstream, separately for the shared system interconnect and the CSDs'
 * aggregate internal paths.
 */
#ifndef SMARTINF_TRAIN_TRAFFIC_LEDGER_H
#define SMARTINF_TRAIN_TRAFFIC_LEDGER_H

#include "common/units.h"

namespace smartinf::train {

/** Traffic totals for one training iteration. */
struct TrafficLedger {
    /** @name Through the shared system interconnect (Table I). @{ */
    Bytes shared_opt_read = 0.0;   ///< SSD -> host optimizer states
    Bytes shared_opt_write = 0.0;  ///< host -> SSD optimizer states
    Bytes shared_grad_read = 0.0;  ///< SSD -> host gradients
    Bytes shared_grad_write = 0.0; ///< host -> SSD gradients (BW offload)
    Bytes shared_param_up = 0.0;   ///< SSD -> host updated parameters (SU)
    /** @} */

    /** @name Inside the CSDs (aggregate over all internal switches). @{ */
    Bytes internal_read = 0.0;  ///< SSD -> FPGA
    Bytes internal_write = 0.0; ///< FPGA -> SSD
    /** @} */

    /** @name Between nodes (aggregate NIC traffic, dist/ collectives). @{ */
    Bytes internode_tx = 0.0; ///< node -> fabric (sum over all nodes)
    Bytes internode_rx = 0.0; ///< fabric -> node (sum over all nodes)
    /** @} */

    /** @name Serving KV-cache spill traffic (serve/ KV model; 0 when KV
     *  modeling is off or the working set stays HBM-resident). @{ */
    Bytes kv_spill_read = 0.0;  ///< host/CSD tiers -> GPU (decode reads)
    Bytes kv_spill_write = 0.0; ///< GPU -> host/CSD tiers (KV appends)
    /** @} */

    Bytes internodeTotal() const { return internode_tx + internode_rx; }

    Bytes
    sharedRead() const
    {
        return shared_opt_read + shared_grad_read + shared_param_up;
    }
    Bytes sharedWrite() const { return shared_opt_write + shared_grad_write; }
    Bytes sharedTotal() const { return sharedRead() + sharedWrite(); }

    TrafficLedger &operator+=(const TrafficLedger &other);
};

} // namespace smartinf::train

#endif // SMARTINF_TRAIN_TRAFFIC_LEDGER_H
