#include "train/gpu_model.h"

#include "common/logging.h"

namespace smartinf::train {

const char *
gpuName(GpuGrade grade)
{
    switch (grade) {
      case GpuGrade::A5000: return "A5000";
      case GpuGrade::A100_40GB: return "A100";
      case GpuGrade::A4000: return "A4000";
    }
    return "?";
}

GpuModel
GpuModel::get(GpuGrade grade)
{
    switch (grade) {
      case GpuGrade::A5000:
        // Tensor-core FP16 peak ~111 TFLOPS; ~22% MFU in offloaded
        // fine-tuning at batch 4.
        return GpuModel{"A5000", TFLOPS(35.0), GiB(24), 2000.0};
      case GpuGrade::A100_40GB:
        // ~3x the achieved throughput of the A5000 (paper Fig 11: FW/BW
        // shrink, data-transfer share grows).
        return GpuModel{"A100", TFLOPS(105.0), GiB(40), 7000.0};
      case GpuGrade::A4000:
        // Single-slot card used in the congested expansion chassis.
        return GpuModel{"A4000", TFLOPS(17.0), GiB(16), 1000.0};
    }
    panic("unknown GPU grade");
}

} // namespace smartinf::train
