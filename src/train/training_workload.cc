#include "train/training_workload.h"

#include <algorithm>

#include "common/logging.h"
#include "dist/collective.h"
#include "train/system_builder.h"

namespace smartinf::train {

using sim::TaskGraph;
using TaskId = TaskGraph::TaskId;

TrainingWorkload::TrainingWorkload(const ModelSpec &model,
                                   const TrainConfig &train)
    : model_(model), train_(train)
{
}

void
TrainingWorkload::build(SimContext &ctx)
{
    SI_ASSERT(builders_.empty(), "TrainingWorkload::build called twice");
    if (ctx.system.num_nodes > 1) {
        buildDistributed(ctx);
        return;
    }
    builders_.push_back(std::make_unique<IterationBuilder>(
        model_, train_, ctx.system, ctx));
    fw_.push_back(builders_[0]->buildForward());
    bw_.push_back(builders_[0]->buildBackward(fw_[0]));
    builders_[0]->buildUpdate(bw_[0]);
}

void
TrainingWorkload::buildDistributed(SimContext &ctx)
{
    const int nodes = ctx.system.num_nodes;
    buildNicLinks(ctx.topo, ctx.system);

    // Every server runs the same single-node iteration, namespaced into the
    // shared topology/graph so all flows contend in one fluid-flow model.
    builders_.reserve(nodes);
    for (int i = 0; i < nodes; ++i)
        builders_.push_back(std::make_unique<IterationBuilder>(
            model_, train_, ctx.system, ctx, nodePrefix(i)));

    fw_.resize(nodes);
    bw_.resize(nodes);
    for (int i = 0; i < nodes; ++i)
        fw_[i] = builders_[i]->buildForward();
    for (int i = 0; i < nodes; ++i)
        bw_[i] = builders_[i]->buildBackward(fw_[i]);

    // Gradient sync: ring all-reduce of the dense FP32 gradients. (SmartComp
    // compresses the host->CSD wire only; inter-node reduction stays dense
    // so the data-parallel math matches the single-node run bit for bit.)
    sync_tx_per_node_ = 0.0;
    TaskId sync_done = TaskGraph::kInvalidTask;
    if (ctx.system.overlap_grad_sync) {
        // One bucket per transformer block, gated on every node having
        // that block's gradients in host memory; the block's storage
        // offload then waits for its reduced bucket. Early blocks sync
        // while later blocks are still in backward compute.
        const Bytes bucket =
            model_.num_params / model_.num_layers * kBytesFp32;
        for (int b = 0; b < model_.num_layers; ++b) {
            std::vector<TaskId> deps(nodes);
            for (int i = 0; i < nodes; ++i)
                deps[i] = builders_[i]->gradToHostTask(b);
            const dist::CollectiveSchedule cs = dist::scheduleRingCollective(
                ctx, dist::CollectiveKind::AllReduce, nodes, bucket, deps,
                {"sync.done", b});
            for (int i = 0; i < nodes; ++i)
                ctx.graph.dependsOn(builders_[i]->gradOffloadGateTask(b),
                                    cs.done);
            sync_tx_per_node_ += cs.tx_bytes_per_node;
        }
    } else {
        // Ablation: one monolithic all-reduce strictly after backward.
        std::vector<TaskId> deps(bw_);
        const dist::CollectiveSchedule cs = dist::scheduleRingCollective(
            ctx, dist::CollectiveKind::AllReduce, nodes,
            model_.gradientBytes(), deps, {"sync.all"});
        sync_done = cs.done;
        sync_tx_per_node_ = cs.tx_bytes_per_node;
    }

    // Each node updates its full optimizer-state replica near storage,
    // gated on its own backward (whose offloads already waited for the
    // bucketed sync) plus, in the monolithic case, the global sync.
    for (int i = 0; i < nodes; ++i) {
        TaskId ready = bw_[i];
        if (sync_done != TaskGraph::kInvalidTask) {
            ready = ctx.graph.barrier({"upd.ready", i});
            ctx.graph.dependsOn(ready, bw_[i]);
            ctx.graph.dependsOn(ready, sync_done);
        }
        builders_[i]->buildUpdate(ready);
    }
}

void
TrainingWorkload::collect(const SimContext &ctx, WorkloadResult &out)
{
    // Nodes are symmetric but not lock-stepped; report the slowest node's
    // phase boundaries (the cluster advances at the straggler's pace).
    Seconds t_fw = 0.0, t_bw = 0.0;
    for (std::size_t i = 0; i < builders_.size(); ++i) {
        t_fw = std::max(t_fw, ctx.graph.finishTime(fw_[i]));
        t_bw = std::max(t_bw, ctx.graph.finishTime(bw_[i]));
    }
    const Seconds t_end = ctx.graph.makespan();
    out.phases.forward = t_fw;
    out.phases.backward = t_bw - t_fw;
    out.phases.update = t_end - t_bw;
    out.iteration_time = t_end;
}

} // namespace smartinf::train
