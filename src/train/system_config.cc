#include "train/system_config.h"

#include "common/enum_names.h"
#include "common/validation.h"

namespace smartinf::train {

const char *
strategyName(Strategy strategy)
{
    switch (strategy) {
      case Strategy::Baseline: return "BASE";
      case Strategy::SmartUpdate: return "SU";
      case Strategy::SmartUpdateOpt: return "SU+O";
      case Strategy::SmartUpdateOptComp: return "SU+O+C";
    }
    return "?";
}

std::optional<Strategy>
strategyFromName(const std::string &name)
{
    return enumFromName(allStrategies(), strategyName, name);
}

std::vector<Strategy>
allStrategies()
{
    return {Strategy::Baseline, Strategy::SmartUpdate,
            Strategy::SmartUpdateOpt, Strategy::SmartUpdateOptComp};
}

std::string
joinErrors(const std::vector<std::string> &errors)
{
    std::string out;
    for (const auto &error : errors) {
        if (!out.empty())
            out += "; ";
        out += error;
    }
    return out;
}

std::vector<std::string>
SystemConfig::validate() const
{
    std::vector<std::string> errors;
    requireField(errors, num_devices >= 1, "num_devices must be >= 1",
                 num_devices);
    requireField(errors, num_gpus >= 1, "num_gpus must be >= 1", num_gpus);
    if (strategy == Strategy::SmartUpdateOptComp) {
        requireField(errors,
                     compression_wire_fraction > 0.0 &&
                         compression_wire_fraction <= 1.0,
                     "compression_wire_fraction must be in (0, 1]",
                     compression_wire_fraction);
    }
    requireField(errors, num_nodes >= 1, "num_nodes must be >= 1",
                 num_nodes);
    if (num_nodes > 1) {
        requireField(errors, nic_bandwidth > 0.0,
                     "nic_bandwidth must be positive for multi-node configs",
                     nic_bandwidth);
        requireField(errors, nic_latency >= 0.0, "nic_latency must be >= 0",
                     nic_latency);
    }
    requireField(errors, calib.ssd_read > 0.0,
                 "calib.ssd_read must be positive", calib.ssd_read);
    requireField(errors, calib.ssd_write > 0.0,
                 "calib.ssd_write must be positive", calib.ssd_write);
    requireField(errors,
                 calib.fpga_dram_usable > 0.0 &&
                     calib.fpga_dram_usable <= 1.0,
                 "calib.fpga_dram_usable must be in (0, 1]",
                 calib.fpga_dram_usable);
    return errors;
}

} // namespace smartinf::train
