#include "train/sim_context.h"

namespace smartinf::train {

sim::TaskGraph::TaskId
SimContext::transfer(net::Route route, Bytes bytes, sim::TaskLabel label)
{
    const Seconds latency = system.calib.transfer_latency;
    return graph.add(
        [this, route = std::move(route), bytes,
         latency](std::function<void()> done) {
            net.startFlow(route, bytes, std::move(done), latency);
        },
        label);
}

} // namespace smartinf::train
