#include "train/sim_context.h"

namespace smartinf::train {

sim::TaskGraph::TaskId
SimContext::transfer(net::Route route, Bytes bytes, sim::TaskLabel label)
{
    const Seconds latency = system.calib.transfer_latency;
    return graph.add(
        [this, route = std::move(route), bytes,
         latency](std::function<void()> done) {
            if (faults_armed) {
                // Revocation seam: remember how to pull this flow back
                // out of the network if the launching task's domain is
                // revoked (node crash mid-transfer).
                const sim::TaskGraph::TaskId tid = graph.launchingTask();
                const net::FlowId fid =
                    net.startFlow(route, bytes, std::move(done), latency);
                graph.setCanceller(tid,
                                   [this, fid]() { net.cancelFlow(fid); });
                return;
            }
            net.startFlow(route, bytes, std::move(done), latency);
        },
        label);
}

} // namespace smartinf::train
