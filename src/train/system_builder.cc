#include "train/system_builder.h"

namespace smartinf::train {

std::string
nodePrefix(int node)
{
    return "n" + std::to_string(node) + ".";
}

void
buildNodeLinks(net::Topology &topo, const SystemConfig &system,
               const std::string &prefix)
{
    const Calibration &cal = system.calib;
    topo.addLink(prefix + "host.up", cal.host_shared);
    topo.addLink(prefix + "host.down", cal.host_shared);
    topo.addLink(prefix + "gpu.up", cal.gpu_link);
    topo.addLink(prefix + "gpu.down", cal.gpu_link);
    if (system.congested_topology && system.num_gpus > 1) {
        // Peer traffic between tensor-parallel GPUs crosses the shared
        // expansion switch fabric.
        topo.addLink(prefix + "tp.fabric", cal.gpu_link);
    }
    // The baseline reaches SSD media through the software RAID0, which
    // costs striping efficiency; Smart-Infinity's direct pread/pwrite
    // P2P path does not.
    const double media_eff =
        strategyUsesCsd(system.strategy) ? 1.0 : cal.raid_efficiency;
    for (int d = 0; d < system.num_devices; ++d) {
        const std::string ssd = prefix + "ssd" + std::to_string(d);
        topo.addLink(ssd + ".read", cal.ssd_read * media_eff);
        topo.addLink(ssd + ".write", cal.ssd_write * media_eff);
        topo.addLink(ssd + ".up", cal.device_link);
        topo.addLink(ssd + ".down", cal.device_link);
    }
}

void
buildNicLinks(net::Topology &topo, const SystemConfig &system)
{
    for (int n = 0; n < system.num_nodes; ++n) {
        const std::string nic = nodePrefix(n) + "nic";
        topo.addLink(nic + ".tx", system.nic_bandwidth);
        topo.addLink(nic + ".rx", system.nic_bandwidth);
    }
}

} // namespace smartinf::train
