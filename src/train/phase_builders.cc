#include "train/phase_builders.h"

#include <algorithm>

#include "common/logging.h"
#include "train/gpu_model.h"
#include "train/system_builder.h"

namespace smartinf::train {

PhaseBuilder::PhaseBuilder(const ModelSpec &model, const SystemConfig &system,
                           SimContext &ctx, std::string prefix)
    : model_(model), system_(system), ctx_(ctx), prefix_(std::move(prefix))
{
    buildNodeLinks(ctx_.topo, system_, prefix_);
    buildResources();
}

void
PhaseBuilder::buildResources()
{
    const Calibration &cal = system_.calib;
    const GpuModel gpu = GpuModel::get(system_.gpu);
    gpu_ = std::make_unique<sim::Resource>(
        ctx_.sim, pfx("gpu"), gpu.effective_flops * system_.num_gpus,
        cal.kernel_launch);
    cpu_ = std::make_unique<sim::Resource>(ctx_.sim, pfx("cpu.update"),
                                           cal.cpu_update, 20e-6);
    if (strategyUsesCsd(system_.strategy)) {
        for (int d = 0; d < system_.num_devices; ++d) {
            // FPGA kernel engine: work is expressed in seconds
            // (rate 1.0) so one resource serializes update and
            // decompression kernels.
            fpga_.push_back(std::make_unique<sim::Resource>(
                ctx_.sim, pfx("fpga" + std::to_string(d)), 1.0,
                cal.kernel_launch));
            // Single OpenCL P2P DMA queue per CSD: internal reads and
            // writes serialize on it.
            dma_.push_back(std::make_unique<sim::Resource>(
                ctx_.sim, pfx("dma" + std::to_string(d)), 1.0,
                cal.transfer_latency));
        }
    }
}

/** Internal P2P transfer as work (seconds) on the CSD's DMA engine. */
PhaseBuilder::TaskId
PhaseBuilder::internalTransfer(int d, Bytes bytes, BytesPerSec p2p_rate,
                               BytesPerSec media_rate, sim::TaskLabel label)
{
    const Seconds duration = bytes / std::min(p2p_rate, media_rate);
    return ctx_.graph.compute(*dma_[d], duration, label);
}

net::Route
PhaseBuilder::gpuDown()
{
    // Host memory -> GPU. In the congested topology this shares the
    // expansion trunk with storage traffic (Fig 17).
    if (system_.congested_topology)
        return {link("host.down"), link("gpu.down")};
    return {link("gpu.down")};
}

net::Route
PhaseBuilder::gpuUp()
{
    if (system_.congested_topology)
        return {link("gpu.up"), link("host.up")};
    return {link("gpu.up")};
}

net::Route
PhaseBuilder::ssdWriteRoute(int d)
{
    const std::string ssd = "ssd" + std::to_string(d);
    return {link("host.down"), link(ssd + ".down"), link(ssd + ".write")};
}

net::Route
PhaseBuilder::ssdReadRoute(int d)
{
    const std::string ssd = "ssd" + std::to_string(d);
    return {link(ssd + ".read"), link(ssd + ".up"), link("host.up")};
}

// ---- phase primitives -------------------------------------------------------

PhaseBuilder::TaskId
PhaseBuilder::hostToGpu(Bytes bytes, sim::TaskLabel label)
{
    return ctx_.transfer(gpuDown(), bytes, label);
}

PhaseBuilder::TaskId
PhaseBuilder::gpuToHost(Bytes bytes, sim::TaskLabel label)
{
    return ctx_.transfer(gpuUp(), bytes, label);
}

PhaseBuilder::TaskId
PhaseBuilder::gpuCompute(Flops work, sim::TaskLabel label)
{
    return ctx_.graph.compute(*gpu_, work, label);
}

PhaseBuilder::TaskId
PhaseBuilder::storageRead(int d, Bytes bytes, sim::TaskLabel label)
{
    SI_ASSERT(d >= 0 && d < system_.num_devices, "bad device index");
    return ctx_.transfer(ssdReadRoute(d), bytes, label);
}

PhaseBuilder::TaskId
PhaseBuilder::storageWrite(int d, Bytes bytes, sim::TaskLabel label)
{
    SI_ASSERT(d >= 0 && d < system_.num_devices, "bad device index");
    return ctx_.transfer(ssdWriteRoute(d), bytes, label);
}

std::pair<PhaseBuilder::TaskId, PhaseBuilder::TaskId>
PhaseBuilder::storageReadStriped(Bytes bytes, sim::TaskLabel label)
{
    const TaskId gate = ctx_.graph.barrier(label);
    const TaskId join = ctx_.graph.barrier(label);
    const Bytes per_dev = bytes / system_.num_devices;
    for (int d = 0; d < system_.num_devices; ++d) {
        const TaskId part = ctx_.transfer(ssdReadRoute(d), per_dev,
                                          {label.stem, label.a, d});
        ctx_.graph.dependsOn(part, gate);
        ctx_.graph.dependsOn(join, part);
    }
    return {gate, join};
}

} // namespace smartinf::train
