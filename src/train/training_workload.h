/**
 * @file
 * Training expressed as a Workload: one steady-state data-parallel training
 * iteration (the paper's workload) on 1..N nodes. Single-node runs build
 * one IterationBuilder; multi-node runs build one per node in the shared
 * SimContext and stitch the ring all-reduce gradient sync between backward
 * and update — exactly the dataflow the engines produced before the
 * Workload API, bit for bit.
 */
#ifndef SMARTINF_TRAIN_TRAINING_WORKLOAD_H
#define SMARTINF_TRAIN_TRAINING_WORKLOAD_H

#include <memory>
#include <string>
#include <vector>

#include "train/iteration_builder.h"
#include "train/workload.h"

namespace smartinf::train {

/** One steady-state training iteration on ctx.system.num_nodes nodes. */
class TrainingWorkload final : public Workload
{
  public:
    TrainingWorkload(const ModelSpec &model, const TrainConfig &train);

    std::string name() const override { return "training-iteration"; }
    WorkloadKind kind() const override { return WorkloadKind::Training; }

    void build(SimContext &ctx) override;
    void collect(const SimContext &ctx, WorkloadResult &out) override;

    /**
     * NIC egress bytes one node contributed to gradient sync in the last
     * build (== ringAllReduceTxBytesPerNode of the gradients; 0 for
     * single-node runs).
     */
    Bytes syncTxBytesPerNode() const { return sync_tx_per_node_; }

  private:
    void buildDistributed(SimContext &ctx);

    ModelSpec model_;
    TrainConfig train_;
    std::vector<std::unique_ptr<IterationBuilder>> builders_;
    std::vector<sim::TaskGraph::TaskId> fw_, bw_;
    Bytes sync_tx_per_node_ = 0.0;
};

} // namespace smartinf::train

#endif // SMARTINF_TRAIN_TRAINING_WORKLOAD_H
