/**
 * @file
 * Assembles the concrete system shapes (RAID host, CSD host, congested
 * multi-GPU expansion, multi-node NIC fabric) as named links in a
 * net::Topology. Kept separate from the iteration builder so the single-node
 * engines and the dist/ layer share one source of truth for link names and
 * capacities.
 *
 * Naming scheme: intra-node links are "<prefix>host.up", "<prefix>ssd2.read",
 * ... where the prefix is "" for single-node runs and nodePrefix(i) for node
 * i of a cluster. Each node's NIC exposes "<prefix>nic.tx" (egress) and
 * "<prefix>nic.rx" (ingress); collective flows traverse the sender's shared
 * host interconnect, its NIC, the receiver's NIC, and the receiver's host
 * interconnect, which is what makes NIC and PCIe-offload traffic contend.
 */
#ifndef SMARTINF_TRAIN_SYSTEM_BUILDER_H
#define SMARTINF_TRAIN_SYSTEM_BUILDER_H

#include <string>

#include "net/topology.h"
#include "train/system_config.h"

namespace smartinf::train {

/** Link-name prefix of node @p node in a multi-node topology. */
std::string nodePrefix(int node);

/**
 * Add one server's intra-node links (shared host interconnect, GPU link,
 * per-device SSD media + external links, optional congested TP fabric).
 */
void buildNodeLinks(net::Topology &topo, const SystemConfig &system,
                    const std::string &prefix = {});

/** Add every node's NIC endpoint links ("n<i>.nic.tx"/"n<i>.nic.rx"). */
void buildNicLinks(net::Topology &topo, const SystemConfig &system);

} // namespace smartinf::train

#endif // SMARTINF_TRAIN_SYSTEM_BUILDER_H
