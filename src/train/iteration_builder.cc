#include "train/iteration_builder.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "train/gpu_model.h"

namespace smartinf::train {

using TaskId = sim::TaskGraph::TaskId;

IterationBuilder::IterationBuilder(const ModelSpec &model,
                                   const TrainConfig &train,
                                   const SystemConfig &system, SimContext &ctx,
                                   std::string prefix)
    : PhaseBuilder(model, system, ctx, std::move(prefix)), train_(train)
{
    grad_to_host_.assign(model_.num_layers, sim::TaskGraph::kInvalidTask);
    grad_offload_gate_.assign(model_.num_layers, sim::TaskGraph::kInvalidTask);
    grad_offload_.assign(model_.num_layers, sim::TaskGraph::kInvalidTask);
}

// ---- model slicing ----------------------------------------------------------

Bytes
IterationBuilder::activationBytesPerBlock() const
{
    return static_cast<double>(train_.batch_size) * train_.seq_len *
           model_.hidden_dim * kBytesFp16;
}

bool
IterationBuilder::compressed() const
{
    return system_.strategy == Strategy::SmartUpdateOptComp;
}

/** Gradient bytes leaving the GPU for one block (wire format). */
Bytes
IterationBuilder::gradWireBytesPerBlock() const
{
    const Bytes dense = paramsPerBlock() * kBytesFp32;
    return compressed() ? dense * system_.compression_wire_fraction : dense;
}

TaskId
IterationBuilder::gradToHostTask(int block) const
{
    SI_ASSERT(block >= 0 && block < model_.num_layers, "bad block index");
    SI_ASSERT(grad_to_host_[block] != sim::TaskGraph::kInvalidTask,
              "buildBackward() not called yet");
    return grad_to_host_[block];
}

TaskId
IterationBuilder::gradOffloadTask(int block) const
{
    SI_ASSERT(block >= 0 && block < model_.num_layers, "bad block index");
    SI_ASSERT(grad_offload_[block] != sim::TaskGraph::kInvalidTask,
              "buildBackward() not called yet");
    return grad_offload_[block];
}

TaskId
IterationBuilder::gradOffloadGateTask(int block) const
{
    SI_ASSERT(block >= 0 && block < model_.num_layers, "bad block index");
    SI_ASSERT(grad_offload_gate_[block] != sim::TaskGraph::kInvalidTask,
              "buildBackward() not called yet");
    return grad_offload_gate_[block];
}

// ---- forward ----------------------------------------------------------------

TaskId
IterationBuilder::buildForward()
{
    const double tokens = train_.tokensPerIteration();
    const Flops fw_flops_per_block = 2.0 * paramsPerBlock() * tokens;
    TaskId fw_done = ctx_.graph.barrier({"fw.done"});

    TaskId prev_compute = sim::TaskGraph::kInvalidTask;
    for (int b = 0; b < model_.num_layers; ++b) {
        // 1. Load the block's FP16 parameters from host memory.
        TaskId load = hostToGpu(paramsPerBlock() * kBytesFp16,
                                {"fw.load", b});
        // 2. Forward compute on the GPU (blocks in order).
        TaskId compute = gpuCompute(fw_flops_per_block, {"fw.compute", b});
        ctx_.graph.dependsOn(compute, load);
        if (b > 0)
            ctx_.graph.dependsOn(compute, prev_compute);
        tpAllReduce(compute, {"fw.allreduce", b});
        // 3. Checkpoint activations to host memory.
        TaskId act = gpuToHost(activationBytesPerBlock(), {"fw.act", b});
        ctx_.graph.dependsOn(act, compute);
        ctx_.graph.dependsOn(fw_done, act);
        ctx_.graph.dependsOn(fw_done, compute);
        prev_compute = compute;
    }
    return fw_done;
}

/** Tensor-parallel activation all-reduce (congested multi-GPU only). */
void
IterationBuilder::tpAllReduce(TaskId after_compute, sim::TaskLabel label)
{
    if (!system_.congested_topology || system_.num_gpus <= 1)
        return;
    const double scale = 2.0 * (system_.num_gpus - 1) / system_.num_gpus;
    TaskId ar = ctx_.transfer({link("tp.fabric")},
                              scale * activationBytesPerBlock() *
                                  system_.num_gpus,
                              label);
    ctx_.graph.dependsOn(ar, after_compute);
    // The next block's compute is serialized through the GPU resource;
    // the all-reduce overlaps it but must finish inside the phase.
}

// ---- backward ---------------------------------------------------------------

TaskId
IterationBuilder::buildBackward(TaskId fw_done)
{
    const double tokens = train_.tokensPerIteration();
    const Flops bw_flops_per_block = 4.0 * paramsPerBlock() * tokens;
    const Bytes dense_grad = paramsPerBlock() * kBytesFp32;
    TaskId bw_done = ctx_.graph.barrier({"bw.done"});

    TaskId prev_compute = sim::TaskGraph::kInvalidTask;
    for (int b = 0; b < model_.num_layers; ++b) {
        // 1. Reload parameters + checkpointed activations.
        TaskId load = hostToGpu(
            paramsPerBlock() * kBytesFp16 + activationBytesPerBlock(),
            {"bw.load", b});
        ctx_.graph.dependsOn(load, fw_done);
        // 2. Backward compute.
        TaskId compute = gpuCompute(bw_flops_per_block, {"bw.compute", b});
        ctx_.graph.dependsOn(compute, load);
        if (b > 0)
            ctx_.graph.dependsOn(compute, prev_compute);
        tpAllReduce(compute, {"bw.allreduce", b});

        // 3. Optional GPU-side Top-K compression (SmartComp).
        TaskId producer = compute;
        if (compressed()) {
            const Flops compress_work =
                dense_grad / system_.calib.gpu_compress * gpuRate();
            TaskId comp = gpuCompute(compress_work, {"bw.compress", b});
            ctx_.graph.dependsOn(comp, compute);
            producer = comp;
        }

        // 4. Gradients to host memory, then offload to storage.
        TaskId to_host = gpuToHost(gradWireBytesPerBlock(),
                                   {"bw.tohost", b});
        ctx_.graph.dependsOn(to_host, producer);
        grad_to_host_[b] = to_host;
        const auto [gate, offload] = buildGradOffload(b);
        ctx_.graph.dependsOn(gate, to_host);
        grad_offload_gate_[b] = gate;
        grad_offload_[b] = offload;
        ctx_.graph.dependsOn(bw_done, offload);
        ctx_.graph.dependsOn(bw_done, compute);
        prev_compute = compute;
    }
    return bw_done;
}

/**
 * Offload one block's gradients. Baseline stripes over the RAID0;
 * Smart-Infinity routes them to the owner CSD of the block's flattened
 * parameter range (§IV-D).
 */
std::pair<TaskId, TaskId>
IterationBuilder::buildGradOffload(int block)
{
    const Bytes wire = gradWireBytesPerBlock();
    ctx_.traffic.shared_grad_write += wire;
    if (system_.strategy == Strategy::Baseline) {
        // The stripes hang off a gate barrier so they start only once the
        // block's gradients exist in host memory (plus whatever extra
        // dependencies a caller points at the gate).
        TaskId gate = ctx_.graph.barrier({"bw.offload.start", block});
        TaskId joined = ctx_.graph.barrier({"bw.offload", block});
        const Bytes per_dev = wire / system_.num_devices;
        for (int d = 0; d < system_.num_devices; ++d) {
            TaskId part = storageWrite(d, per_dev, {"bw.offload", block, d});
            ctx_.graph.dependsOn(part, gate);
            ctx_.graph.dependsOn(joined, part);
        }
        return {gate, joined};
    }
    // Flattened equal distribution: consecutive blocks land on
    // consecutive owner CSDs.
    const int owner = block % system_.num_devices;
    TaskId t = storageWrite(owner, wire, {"bw.offload", block});
    return {t, t};
}

// ---- update: baseline -------------------------------------------------------

void
IterationBuilder::buildUpdate(TaskId ready)
{
    if (system_.strategy == Strategy::Baseline)
        buildBaselineUpdate(ready);
    else
        buildSmartUpdate(ready);
}

void
IterationBuilder::buildBaselineUpdate(TaskId ready)
{
    const int aux = optim::auxStateCount(system_.optimizer);
    const double p_block = paramsPerBlock();
    // Read side: gradients (FP32) + master + aux states.
    const Bytes read_bytes = p_block * kBytesFp32 * (2.0 + aux);
    // Write side: master + aux states.
    const Bytes write_bytes = p_block * kBytesFp32 * (1.0 + aux);

    TaskId prev_cpu = sim::TaskGraph::kInvalidTask;
    TaskId prev_read = sim::TaskGraph::kInvalidTask;
    TaskId prev_write = sim::TaskGraph::kInvalidTask;
    for (int b = 0; b < model_.num_layers; ++b) {
        // 1. Upload gradients + optimizer states from the RAID0. The
        // swapper streams blocks in order: block b's upload is issued
        // after block b-1's (sequential prefetch, overlapped with
        // compute and writeback through the full-duplex interconnect).
        TaskId read = ctx_.graph.barrier({"upd.read", b});
        for (int d = 0; d < system_.num_devices; ++d) {
            TaskId part = storageRead(d, read_bytes / system_.num_devices,
                                      {"upd.read", b, d});
            ctx_.graph.dependsOn(part, ready);
            if (b > 0)
                ctx_.graph.dependsOn(part, prev_read);
            ctx_.graph.dependsOn(read, part);
        }
        ctx_.traffic.shared_grad_read += p_block * kBytesFp32;
        ctx_.traffic.shared_opt_read += p_block * kBytesFp32 * (1.0 + aux);

        // 2./3. CPU (AVX) update of the block.
        TaskId cpu = ctx_.graph.compute(*cpu_, read_bytes, {"upd.cpu", b});
        ctx_.graph.dependsOn(cpu, read);
        if (b > 0)
            ctx_.graph.dependsOn(cpu, prev_cpu);

        // 5. Offload updated optimizer states back to the RAID0,
        // likewise streamed in block order.
        TaskId write = ctx_.graph.barrier({"upd.write", b});
        for (int d = 0; d < system_.num_devices; ++d) {
            TaskId part = storageWrite(d, write_bytes / system_.num_devices,
                                       {"upd.write", b, d});
            ctx_.graph.dependsOn(part, cpu);
            if (b > 0)
                ctx_.graph.dependsOn(part, prev_write);
            ctx_.graph.dependsOn(write, part);
        }
        ctx_.traffic.shared_opt_write += write_bytes;
        prev_cpu = cpu;
        prev_read = read;
        prev_write = write;
    }
}

// ---- update: Smart-Infinity -------------------------------------------------

void
IterationBuilder::buildSmartUpdate(TaskId ready)
{
    const Calibration &cal = system_.calib;
    const int aux = optim::auxStateCount(system_.optimizer);
    const double params_per_csd = model_.num_params / system_.num_devices;

    // Subgroup sizing against FPGA DRAM (the paper's D): the naive
    // handler dedicates the whole usable DRAM to one subgroup; the
    // optimized handler needs double buffers.
    const double resident_bytes_per_elem = kBytesFp32 * (2.0 + aux);
    const bool optimized = system_.strategy != Strategy::SmartUpdate;
    const double usable =
        GiB(4.0) * cal.fpga_dram_usable / (optimized ? 2.0 : 1.0);
    const double subgroup_elems =
        std::max(1.0, std::floor(usable / resident_bytes_per_elem));
    const int num_subgroups =
        static_cast<int>(std::ceil(params_per_csd / subgroup_elems));

    for (int d = 0; d < system_.num_devices; ++d)
        buildCsdChain(d, ready, params_per_csd, num_subgroups, aux);
}

void
IterationBuilder::buildCsdChain(int d, TaskId ready, double params_per_csd,
                                int num_subgroups, int aux)
{
    const Calibration &cal = system_.calib;
    const bool optimized = system_.strategy != Strategy::SmartUpdate;
    const double elems = params_per_csd / num_subgroups;

    // Per-subgroup byte volumes.
    const Bytes grad_read =
        compressed()
            ? elems * kBytesFp32 * system_.compression_wire_fraction
            : elems * kBytesFp32;
    const Bytes state_read = elems * kBytesFp32 * (1.0 + aux);
    const Bytes param_write = elems * kBytesFp32;       // FP32 master (urgent)
    const Bytes state_write = elems * kBytesFp32 * aux; // mmt/var (lazy)
    const Bytes upstream = elems * kBytesFp32;          // paper's 2M total

    // Modeled kernel durations (Resource rate is 1.0 s/s).
    const Seconds update_secs =
        elems * kBytesFp32 * (2.0 + aux) / cal.fpga_updater;
    const Seconds decomp_secs = elems * kBytesFp32 / cal.fpga_decomp;

    TaskId prev_kernel = sim::TaskGraph::kInvalidTask;
    TaskId prev_write_all = sim::TaskGraph::kInvalidTask;

    for (int s = 0; s < num_subgroups; ++s) {
        // Labels carry (device, subgroup); the node prefix is a link/
        // resource concept, not a label one.

        // 1. P2P load: (compressed) gradients + optimizer states, on
        // the CSD's single DMA queue.
        TaskId read = internalTransfer(d, grad_read + state_read,
                                       cal.p2p_read, cal.ssd_read,
                                       {"csd.read", d, s});
        ctx_.graph.dependsOn(read, ready);
        ctx_.traffic.internal_read += grad_read + state_read;

        if (optimized) {
            // Double buffering: the next load may begin once the
            // previous subgroup's compute released its input buffer —
            // the DMA queue stays busy through kernels.
            if (s > 0)
                ctx_.graph.dependsOn(read, prev_kernel);
        } else {
            // Naive: one buffer — the whole previous tasklet (including
            // writeback) must finish first (Fig 5a), so the DMA engine
            // idles during every kernel.
            if (s > 0)
                ctx_.graph.dependsOn(read, prev_write_all);
        }

        // 2. Decompress (SmartComp) then update on the FPGA.
        TaskId kernel_dep = read;
        if (compressed()) {
            TaskId decomp = ctx_.graph.compute(*fpga_[d], decomp_secs,
                                               {"csd.decomp", d, s});
            ctx_.graph.dependsOn(decomp, read);
            kernel_dep = decomp;
        }
        TaskId kernel = ctx_.graph.compute(*fpga_[d], update_secs,
                                           {"csd.update", d, s});
        ctx_.graph.dependsOn(kernel, kernel_dep);

        // 3. Writeback. Optimized: urgent FP32 master first, lazy
        // momentum/variance after; naive: one combined transfer.
        TaskId write_params, write_all;
        if (optimized) {
            write_params = internalTransfer(d, param_write, cal.p2p_write,
                                            cal.ssd_write,
                                            {"csd.wparam", d, s});
            ctx_.graph.dependsOn(write_params, kernel);
            TaskId write_states = internalTransfer(
                d, state_write, cal.p2p_write, cal.ssd_write,
                {"csd.wstate", d, s});
            ctx_.graph.dependsOn(write_states, write_params);
            write_all = write_states;
        } else {
            write_all = internalTransfer(d, param_write + state_write,
                                         cal.p2p_write, cal.ssd_write,
                                         {"csd.wall", d, s});
            ctx_.graph.dependsOn(write_all, kernel);
            write_params = write_all;
        }
        ctx_.traffic.internal_write += param_write + state_write;

        // 4. Updated parameters upstream to host memory (overlappable
        // with the update of other subgroups — paper §IV-A).
        TaskId up = storageRead(d, upstream, {"csd.upstream", d, s});
        ctx_.graph.dependsOn(up, write_params);
        ctx_.traffic.shared_param_up += upstream;

        prev_kernel = kernel;
        prev_write_all = write_all;
    }
}

} // namespace smartinf::train
