/**
 * @file
 * The Workload abstraction: the engine layer executes *workloads*, not just
 * training iterations. A Workload expresses its work (task graphs, flows,
 * timed events) into a SimContext; Engine::run() drives the simulator and
 * hands back a WorkloadResult. Training is one workload
 * (train::TrainingWorkload); batched inference serving is another
 * (serve::InferenceWorkload); new workload shapes implement this interface
 * and plug into the same engines, sweep runner, and scenario registry.
 */
#ifndef SMARTINF_TRAIN_WORKLOAD_H
#define SMARTINF_TRAIN_WORKLOAD_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/streaming_percentiles.h"
#include "common/units.h"
#include "obs/counter_sampler.h"
#include "train/traffic_ledger.h"

namespace smartinf::train {

struct SimContext;

/** The shape of work an engine executes (RunSpec axis, hashed). */
enum class WorkloadKind {
    Training, ///< steady-state training iterations (the paper's workload)
    Serving   ///< batched inference over the same storage-offload substrate
};

const char *workloadKindName(WorkloadKind kind);

/**
 * Inverse of workloadKindName() ("training"/"serving", case-insensitive).
 * Returns nullopt for unknown names.
 */
std::optional<WorkloadKind> workloadKindFromName(const std::string &name);

/** Every workload kind, in declaration order (sweep axes, tests). */
std::vector<WorkloadKind> allWorkloadKinds();

/** Wall-clock split of one training iteration into the paper's three
 *  phases. Serving workloads leave it zero. */
struct PhaseBreakdown {
    Seconds forward = 0.0;
    /** Backward compute + gradient offload (paper "BW+Grad. Offload"). */
    Seconds backward = 0.0;
    /** Update + optimizer-state upload/offload. */
    Seconds update = 0.0;

    Seconds total() const { return forward + backward + update; }
};

/**
 * Lifecycle timestamps of one served request (simulated seconds). The
 * serving scheduler emits one per request; percentile latency and
 * throughput reporting derive from these records, which are part of the
 * deterministic contract: same seed + spec => bit-identical records.
 */
struct RequestRecord {
    int id = 0;             ///< stream position (global across nodes)
    int node = 0;           ///< replica that served the request
    int prompt_tokens = 0;  ///< prefill length
    int output_tokens = 0;  ///< tokens generated (incl. the first)
    Seconds arrival = 0.0;  ///< open-loop/trace arrival time
    Seconds start = 0.0;    ///< admitted into a running batch
    Seconds first_token = 0.0; ///< prefill step completed
    Seconds finish = 0.0;      ///< last decode step completed
    /** Failed dispatch attempts before this disposition (failover only;
     *  always 0 in fault-free runs). */
    int retries = 0;
    /** True when the request was rejected (retries exhausted, timed out,
     *  or admission-shed into an overloaded recovering fleet) instead of
     *  served. Shed records keep their arrival and stamp finish with the
     *  shed decision time; their token counts are what was *requested*,
     *  not produced. */
    bool shed = false;
    /** Priority class (control-plane priority mix; 0 otherwise). */
    int priority = 0;
    /** SLO-admission defer rounds this request went through before its
     *  disposition (control plane only; always 0 otherwise). */
    int deferrals = 0;
    /** True when SLO admission control turned the request away: its
     *  predicted completion missed the latency target. Like shed records,
     *  rejected records keep their arrival, stamp finish with the decision
     *  time, and report requested (not produced) token counts. */
    bool rejected = false;

    Seconds queueDelay() const { return start - arrival; }
    Seconds timeToFirstToken() const { return first_token - arrival; }
    Seconds latency() const { return finish - arrival; }
    /** Disposition: the request produced all its tokens. */
    bool successful() const { return !shed && !rejected; }
};

/**
 * What the fault-injection + recovery machinery did during one run.
 * All-zero (enabled=false) without faults — part of the inert-by-default
 * contract. Counts simulation decisions, so it is deterministic and
 * jobs-invariant like the request records.
 */
struct FaultStats {
    bool enabled = false;
    int node_crashes = 0;  ///< whole-replica failures injected
    int csd_failures = 0;  ///< device failures injected
    int link_degrades = 0; ///< NIC/link degradation episodes injected
    int stalls = 0;        ///< transient stalls injected
    /** @name Serving recovery. @{ */
    int requests_displaced = 0; ///< pulled off a failed replica mid-service
    int retries_dispatched = 0; ///< re-dispatch attempts issued
    int requests_shed = 0;      ///< rejected (limit/timeout/admission)
    int reprefills = 0;         ///< re-prefills forced by lost KV tiers
    /** @} */
    /** @name Training recovery. @{ */
    int checkpoints_written = 0; ///< durable checkpoints committed
    int restarts = 0;            ///< crash -> rewind -> replay episodes
    int iterations_replayed = 0; ///< redone iterations (lost progress)
    /** @} */
};

/**
 * What the cluster control plane did during one serving run. All-zero
 * (enabled=false) when the control plane is off — part of its
 * inert-by-default contract. Counts simulation decisions, so it is
 * deterministic and jobs-invariant like the request records.
 */
struct CtrlStats {
    bool enabled = false;
    int rejected = 0;    ///< requests SLO admission turned away
    int deferrals = 0;   ///< defer rounds issued (one request may defer repeatedly)
    int preemptions = 0; ///< running requests evicted for a higher priority
    int scale_ups = 0;   ///< replica warm-ups initiated
    int scale_downs = 0; ///< replica drains initiated
    int warmups_completed = 0; ///< warm-up prefills that finished
    int peak_active_replicas = 0; ///< max simultaneously active replicas
};

/**
 * Aggregate paged-KV statistics of one serving run (summed across node
 * schedulers; zero unless kv.layout=paged). Part of the deterministic
 * result contract — these count simulation decisions, not observability.
 */
struct KvCacheStats {
    std::uint64_t prefix_hits = 0;   ///< admissions that mapped cached pages
    std::uint64_t prefix_misses = 0; ///< admissions that produced a prefix
    std::uint64_t prefix_evictions = 0; ///< cold entries reclaimed
    std::uint64_t cow_copies = 0; ///< divergent appends into shared pages
    int peak_used_blocks = 0;     ///< max live pages on any one node
    int peak_span_blocks = 0;     ///< max arena extent (incl. holes)
    /** Max instantaneous span/used ratio (1.0 = always compact; holes
     *  from ragged retirement push it above 1). */
    double peak_fragmentation = 1.0;
    Bytes peak_block_table_bytes = 0; ///< max mapping-metadata footprint

    double hitRate() const
    {
        const std::uint64_t lookups = prefix_hits + prefix_misses;
        return lookups == 0
                   ? 1.0
                   : static_cast<double>(prefix_hits) /
                         static_cast<double>(lookups);
    }
};

/**
 * Streaming serving aggregates, populated only when ServeConfig::record_cap
 * bounds the retained per-request records (enabled=false — and every field
 * zero — otherwise). Mirrors exactly what serve::summarize derives from the
 * full record vector, but folds each record in at retirement time through
 * bounded-memory primitives: StreamingPercentiles sketches for the latency
 * populations (exact below the cap, <2% relative error above) and an
 * obs::CounterSampler for windowed arrival/retirement time-series — so a
 * 10^6-request run reports p50/p95/p99 without ever holding 10^6 records.
 */
struct StreamingServeStats {
    bool enabled = false;
    /** Records kept verbatim in WorkloadResult::requests (== min(cap,
     *  disposed)); every count below covers the *whole* stream. */
    int records_retained = 0;
    std::int64_t total_requests = 0; ///< served + shed + rejected
    std::int64_t num_served = 0;
    std::int64_t num_shed = 0;
    std::int64_t num_rejected = 0;
    std::int64_t num_retried = 0;
    std::int64_t total_retries = 0;
    std::int64_t num_deferred = 0;
    std::int64_t total_deferrals = 0;
    double output_tokens = 0.0;
    /** @name Latency populations (successful records only, like
     *  serve::summarize; shed/reject waits cover their dispositions). @{ */
    StreamingPercentiles latency;
    StreamingPercentiles ttft;
    StreamingPercentiles queue_delay;
    StreamingPercentiles shed_wait;
    StreamingPercentiles reject_wait;
    /** @} */
    /** Served requests per replica (node-indexed, like the metrics). */
    std::vector<int> replica_requests;
    /** Windowed time-series: "arrivals" and "retirements" (one unit
     *  sample each) plus "latency_s" (sampled at finish) — peak-window
     *  rates derive from these. */
    obs::CounterSampler windows{60.0};

    /** Fold one disposed record in (the retire/shed/reject feeds call
     *  this once per request, in disposition order). */
    void note(const RequestRecord &record);

    /** True when every percentile population is still exact. */
    bool percentilesExact() const
    {
        return latency.exact() && ttft.exact() && queue_delay.exact() &&
               shed_wait.exact() && reject_wait.exact();
    }
};

/**
 * Result of simulating one workload. Training populates phases; serving
 * populates the per-request records and queue statistics. iteration_time
 * keeps its historic name and always holds the workload makespan.
 */
struct WorkloadResult {
    WorkloadKind kind = WorkloadKind::Training;
    PhaseBreakdown phases;
    TrafficLedger traffic;
    /** Workload makespan (== phases.total() for training). */
    Seconds iteration_time = 0.0;
    /** Discrete events the simulator executed — the denominator of the
     *  perf harness's events/sec metric. */
    uint64_t events_executed = 0;

    /** @name Serving only (empty/zero for training). @{ */
    /** One record per request, sorted by id. */
    std::vector<RequestRecord> requests;
    /** Integral of the cluster-wide queued-request count over time;
     *  divide by iteration_time for the mean queue depth. */
    double queue_depth_time_integral = 0.0;
    /** Largest instantaneous per-node queue depth observed. */
    int peak_queue_depth = 0;
    /** Paged KV-cache statistics (all-zero unless kv.layout=paged). */
    KvCacheStats kv;
    /** Control-plane statistics (enabled=false and all-zero unless the
     *  run enabled the control plane). */
    CtrlStats ctrl;
    /** Streaming aggregates (enabled only when record_cap > 0 bounded the
     *  retained records; requests then holds the first record_cap records
     *  and these carry the whole-stream summary). */
    StreamingServeStats streaming;
    /** @} */

    /** Fault/recovery statistics (enabled=false and all-zero unless the
     *  run injected faults). */
    FaultStats fault;

    /** Output tokens generated across all requests (0 for training). */
    double totalOutputTokens() const;
};

/**
 * One unit of executable work. Implementations hold the workload's own
 * parameters (model, batch shape, request stream, ...) and read the system
 * shape from the SimContext the engine hands them. A Workload instance is
 * single-use state for one run: build() may stash task ids / schedulers
 * that collect() then harvests.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;
    virtual WorkloadKind kind() const = 0;

    /**
     * Express the workload in @p ctx: add tasks/dependencies to the graph
     * and (for reactive workloads) schedule timed events that grow the
     * graph dynamically while the simulator runs. Called exactly once,
     * before the engine starts the graph.
     */
    virtual void build(SimContext &ctx) = 0;

    /**
     * Harvest workload-specific results after the simulator drained.
     * Engine::run() fills traffic and events_executed afterwards.
     */
    virtual void collect(const SimContext &ctx, WorkloadResult &out) = 0;
};

} // namespace smartinf::train

#endif // SMARTINF_TRAIN_WORKLOAD_H
