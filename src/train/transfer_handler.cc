#include "train/transfer_handler.h"

#include <algorithm>
#include <cstring>
#include <semaphore>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace smartinf::train {

namespace {

/** Number of buffer slots: double buffering when optimized. */
int
slotCount(bool optimized)
{
    return optimized ? 2 : 1;
}

} // namespace

/** One slot's device buffers: gradients + master + aux states. */
struct TransferHandler::Buffers {
    csd::DeviceBuffer grad;
    csd::DeviceBuffer master;
    std::vector<csd::DeviceBuffer> aux;
};

TransferHandler::TransferHandler(csd::Csd &csd, const ShardLayout &layout,
                                 const Config &config)
    : csd_(csd), layout_(layout), config_(config)
{
    SI_REQUIRE(layout.elems > 0, "empty shard");
    SI_REQUIRE(config.subgroup_elems > 0, "subgroup size must be positive");
    SI_REQUIRE(csd.ssd().capacity() >= layout.totalBytes(),
               "CSD functional capacity too small for shard");
}

std::size_t
TransferHandler::subgroupCount() const
{
    return (layout_.elems + config_.subgroup_elems - 1) /
           config_.subgroup_elems;
}

void
TransferHandler::runUpdate(uint64_t step, float *host_params_out)
{
    process(nullptr, step, host_params_out);
}

void
TransferHandler::runUpdateCompressed(const compress::SparseGradient &sparse,
                                     uint64_t step, float *host_params_out)
{
    SI_REQUIRE(csd_.decompressor() != nullptr,
               "no decompressor installed on ", csd_.name());
    SI_REQUIRE(sparse.dense_size == layout_.elems,
               "sparse gradient sized for a different shard");
    process(&sparse, step, host_params_out);
}

void
TransferHandler::process(const compress::SparseGradient *sparse,
                         uint64_t step, float *host_params_out)
{
    auto *updater = csd_.updater();
    SI_REQUIRE(updater != nullptr, "no updater installed on ", csd_.name());
    const int aux = layout_.aux_states;
    SI_REQUIRE(optim::auxStateCount(updater->kind()) == aux,
               "updater state count does not match shard layout");

    const std::size_t chunk = config_.subgroup_elems;
    const std::size_t groups = subgroupCount();
    const int slots = slotCount(config_.optimized);

    // Pre-allocate device buffers once (the paper's buffer pre-allocation:
    // avoids per-tasklet allocation and bounds device-memory use).
    std::vector<Buffers> buffers(slots);
    for (int k = 0; k < slots; ++k) {
        const std::string tag = "slot" + std::to_string(k);
        buffers[k].grad =
            csd_.fpgaMemory().allocate(chunk * sizeof(float), tag + ".grad");
        buffers[k].master = csd_.fpgaMemory().allocate(chunk * sizeof(float),
                                                       tag + ".master");
        for (int a = 0; a < aux; ++a) {
            buffers[k].aux.push_back(csd_.fpgaMemory().allocate(
                chunk * sizeof(float), tag + ".aux" + std::to_string(a)));
        }
    }

    auto elems_of = [&](std::size_t s) {
        return std::min(chunk, layout_.elems - s * chunk);
    };

    // Loader-side work: SSD -> device buffers (P2P pread).
    auto load_subgroup = [&](std::size_t s, Buffers &buf) {
        const std::size_t n = elems_of(s);
        const std::size_t elem_off = s * chunk;
        csd_.ssd().readFloats(buf.master.floats(), n,
                              layout_.masterOffset() +
                                  elem_off * sizeof(float));
        for (int a = 0; a < aux; ++a) {
            csd_.ssd().readFloats(buf.aux[a].floats(), n,
                                  layout_.auxOffset(a) +
                                      elem_off * sizeof(float));
        }
        if (sparse == nullptr) {
            csd_.ssd().readFloats(buf.grad.floats(), n,
                                  layout_.gradOffset() +
                                      elem_off * sizeof(float));
        }
    };

    // Compute-side work: decompress (if needed), update, write back with
    // urgent-params-first ordering, surface the upstream copy.
    auto compute_subgroup = [&](std::size_t s, Buffers &buf) {
        const std::size_t n = elems_of(s);
        const std::size_t elem_off = s * chunk;
        if (sparse != nullptr) {
            csd_.decompressor()->decompressSubgroup(*sparse, elem_off,
                                                    buf.grad.floats(), n);
        }
        std::vector<float *> states;
        for (int a = 0; a < aux; ++a)
            states.push_back(buf.aux[a].floats());
        updater->processSubgroup(buf.master.floats(), buf.grad.floats(),
                                 states.data(), n, step);

        // Urgent: master parameters back to SSD and up to the host.
        csd_.ssd().writeFloats(buf.master.floats(), n,
                               layout_.masterOffset() +
                                   elem_off * sizeof(float));
        if (host_params_out != nullptr) {
            std::memcpy(host_params_out + elem_off, buf.master.floats(),
                        n * sizeof(float));
        }
        // Deferred: momentum/variance (only needed next iteration).
        for (int a = 0; a < aux; ++a) {
            csd_.ssd().writeFloats(buf.aux[a].floats(), n,
                                   layout_.auxOffset(a) +
                                       elem_off * sizeof(float));
        }
    };

    if (!config_.optimized) {
        // Naive handler (Fig 5a): strictly sequential tasklets.
        for (std::size_t s = 0; s < groups; ++s) {
            load_subgroup(s, buffers[0]);
            compute_subgroup(s, buffers[0]);
        }
        return;
    }

    // Optimized handler (Fig 5b): thread 1 loads subgroup s+1 while
    // thread 0 computes/writes subgroup s, alternating over two slots.
    std::counting_semaphore<2> free_slots(slots);
    std::counting_semaphore<2> ready_slots(0);

    std::thread loader([&]() {
        for (std::size_t s = 0; s < groups; ++s) {
            free_slots.acquire();
            load_subgroup(s, buffers[s % slots]);
            ready_slots.release();
        }
    });

    for (std::size_t s = 0; s < groups; ++s) {
        ready_slots.acquire();
        compute_subgroup(s, buffers[s % slots]);
        free_slots.release();
    }
    loader.join();
}

} // namespace smartinf::train
