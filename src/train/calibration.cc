#include "train/calibration.h"

namespace smartinf::train {

const Calibration &
Calibration::defaults()
{
    static const Calibration defaults{};
    return defaults;
}

} // namespace smartinf::train
