/**
 * @file
 * The replica-selection seam: a pure function from (policy, request id,
 * candidate replicas + loads, ctrl stream) to a chosen replica. Pure on
 * purpose — serve::ClusterController gathers the candidate set (active,
 * alive replicas in ascending index order) and their instantaneous loads;
 * this layer only decides, so every policy is unit-testable without a
 * simulator.
 *
 * Determinism: RoundRobin is draw-free and, over a full candidate set
 * {0..N-1}, reproduces the legacy `id % N` sharding bit for bit (pinned by
 * the control-plane oracle test). JSQ draws one uniformInt only on a tie;
 * P2C draws its two probes on every call with >= 2 candidates. All draws
 * come from the caller's Rng(ctrlSeed(seed)) in dispatch-event order.
 */
#ifndef SMARTINF_CTRL_DISPATCH_H
#define SMARTINF_CTRL_DISPATCH_H

#include <vector>

#include "common/random.h"
#include "ctrl/ctrl_config.h"

namespace smartinf::ctrl {

/**
 * Choose a replica for one request.
 *
 * @param policy      the dispatch policy
 * @param request_id  the request's stream id (round-robin key)
 * @param candidates  eligible replica indices, ascending; must be non-empty
 * @param loads       queued+running per candidate, parallel to `candidates`
 * @param rng         the control plane's fifth-stream Rng
 * @return the chosen replica index (an element of `candidates`)
 */
int pickReplica(DispatchPolicy policy, int request_id,
                const std::vector<int> &candidates,
                const std::vector<int> &loads, Rng &rng);

} // namespace smartinf::ctrl

#endif // SMARTINF_CTRL_DISPATCH_H
