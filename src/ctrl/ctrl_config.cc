#include "ctrl/ctrl_config.h"

#include "common/enum_names.h"
#include "common/validation.h"

namespace smartinf::ctrl {

const char *
dispatchPolicyName(DispatchPolicy policy)
{
    switch (policy) {
      case DispatchPolicy::RoundRobin: return "round-robin";
      case DispatchPolicy::JoinShortestQueue: return "jsq";
      case DispatchPolicy::PowerOfTwoChoices: return "p2c";
    }
    return "?";
}

std::optional<DispatchPolicy>
dispatchPolicyFromName(const std::string &name)
{
    return enumFromName(allDispatchPolicies(), dispatchPolicyName, name);
}

std::vector<DispatchPolicy>
allDispatchPolicies()
{
    return {DispatchPolicy::RoundRobin, DispatchPolicy::JoinShortestQueue,
            DispatchPolicy::PowerOfTwoChoices};
}

const char *
admissionModeName(AdmissionMode mode)
{
    switch (mode) {
      case AdmissionMode::Off: return "off";
      case AdmissionMode::Reject: return "reject";
      case AdmissionMode::Defer: return "defer";
    }
    return "?";
}

std::optional<AdmissionMode>
admissionModeFromName(const std::string &name)
{
    return enumFromName(allAdmissionModes(), admissionModeName, name);
}

std::vector<AdmissionMode>
allAdmissionModes()
{
    return {AdmissionMode::Off, AdmissionMode::Reject, AdmissionMode::Defer};
}

std::vector<std::string>
SloConfig::validate() const
{
    std::vector<std::string> errors;
    if (!enabled())
        return errors; // remaining fields are inert
    requireField(errors, target_p99_s > 0.0,
                 "ctrl.slo.target_p99_s must be positive when admission "
                 "control is armed (it is the SLO being admitted against)",
                 target_p99_s);
    if (admission == AdmissionMode::Defer) {
        requireField(errors, defer_delay_s > 0.0,
                     "ctrl.slo.defer_delay_s must be positive under Defer "
                     "(a zero delay would re-try admission in the same "
                     "instant it just failed)",
                     defer_delay_s);
        requireField(errors, max_defers >= 1,
                     "ctrl.slo.max_defers must be >= 1 under Defer (use "
                     "AdmissionMode::Reject for zero defers)",
                     max_defers);
    }
    return errors;
}

std::vector<std::string>
AutoscaleConfig::validate() const
{
    std::vector<std::string> errors;
    if (!enabled)
        return errors; // remaining fields are inert
    requireField(errors, min_replicas >= 1,
                 "ctrl.autoscale.min_replicas must be >= 1 (the fleet "
                 "cannot scale to zero replicas)",
                 min_replicas);
    requireField(errors, max_replicas >= min_replicas,
                 "ctrl.autoscale.max_replicas must be >= min_replicas",
                 max_replicas);
    requireField(errors, window_s > 0.0,
                 "ctrl.autoscale.window_s must be positive (it is both the "
                 "signal window and the evaluation period)",
                 window_s);
    requireField(errors, cooldown_s >= 0.0,
                 "ctrl.autoscale.cooldown_s must be >= 0", cooldown_s);
    requireField(errors, scale_up_depth > scale_down_depth,
                 "ctrl.autoscale.scale_up_depth must exceed "
                 "scale_down_depth (a non-hysteretic band would oscillate "
                 "every window)",
                 scale_up_depth);
    requireField(errors, scale_down_depth >= 0.0,
                 "ctrl.autoscale.scale_down_depth must be >= 0",
                 scale_down_depth);
    requireField(errors,
                 min_attainment >= 0.0 && min_attainment <= 1.0,
                 "ctrl.autoscale.min_attainment must be in [0, 1]",
                 min_attainment);
    return errors;
}

std::vector<std::string>
PriorityConfig::validate() const
{
    std::vector<std::string> errors;
    requireField(errors, high_fraction >= 0.0 && high_fraction <= 1.0,
                 "ctrl.priority.high_fraction must be in [0, 1] (the "
                 "probability a request is high priority)",
                 high_fraction);
    if (!enabled())
        requireField(errors, !preempt,
                     "ctrl.priority.preempt requires a non-zero "
                     "high_fraction (with one priority class there is "
                     "nothing to preempt for; set high_fraction or clear "
                     "preempt)",
                     preempt);
    return errors;
}

std::vector<std::string>
CtrlConfig::validate() const
{
    std::vector<std::string> errors;
    if (!enabled) {
        // Like kv.layout, the feature switches are not inert when the
        // master switch is off: asking for admission control or
        // autoscaling with no control plane is a contradiction, not a
        // normalizable no-op.
        requireField(errors, !slo.enabled(),
                     "ctrl.slo.admission requires ctrl.enabled (admission "
                     "control runs inside the control plane; enable it or "
                     "reset the admission mode)",
                     admissionModeName(slo.admission));
        requireField(errors, !autoscale.enabled,
                     "ctrl.autoscale.enabled requires ctrl.enabled",
                     autoscale.enabled);
        requireField(errors, !priority.enabled(),
                     "ctrl.priority.high_fraction requires ctrl.enabled",
                     priority.high_fraction);
        return errors;
    }
    for (auto &e : slo.validate())
        errors.push_back(std::move(e));
    for (auto &e : autoscale.validate())
        errors.push_back(std::move(e));
    for (auto &e : priority.validate())
        errors.push_back(std::move(e));
    if (autoscale.enabled && autoscale.min_attainment > 0.0)
        requireField(errors, slo.target_p99_s > 0.0,
                     "ctrl.autoscale.min_attainment needs ctrl.slo."
                     "target_p99_s to define attainment (set the SLO "
                     "target or clear min_attainment)",
                     autoscale.min_attainment);
    return errors;
}

} // namespace smartinf::ctrl
