/**
 * @file
 * SLO-aware admission control: an observable-driven latency predictor plus
 * the reject/defer decision procedure around it. Pure decision state — the
 * serve layer feeds it observed step times and asks for a verdict at each
 * dispatch; it schedules nothing and draws nothing (admission is entirely
 * deterministic given the event order, so enabling it never revives the
 * seed in the RunSpec hash).
 */
#ifndef SMARTINF_CTRL_ADMISSION_H
#define SMARTINF_CTRL_ADMISSION_H

#include "common/units.h"
#include "ctrl/ctrl_config.h"

namespace smartinf::ctrl {

/** The three dispositions SLO admission can hand a request. */
enum class AdmissionDecision { Admit, Defer, Reject };

/**
 * The latency-SLO admission model of SloConfig: predicted latency is
 * (now - arrival) + (load + 1 + output_tokens) * stepEstimate(), where the
 * step estimate is an EWMA over observed scheduler step durations (alpha
 * 1/4 — heavy enough smoothing to ride out the prefill/decode step-time
 * bimodality, light enough to track load shifts within a few steps).
 */
class SloAdmission {
  public:
    explicit SloAdmission(const SloConfig &config) : config_(config) {}

    /** Fold one observed scheduler step duration into the estimate. */
    void noteStepTime(Seconds dt)
    {
        step_estimate_ =
            observed_ ? 0.75 * step_estimate_ + 0.25 * dt : dt;
        observed_ = true;
    }

    /** Current EWMA service-time-per-step estimate (0 until observed). */
    Seconds stepEstimate() const { return observed_ ? step_estimate_ : 0.0; }

    /**
     * Decide a request's fate at dispatch time.
     *
     * @param now            dispatch time
     * @param arrival        the request's arrival time (deferred requests
     *                       accumulate waiting time against the SLO)
     * @param output_tokens  decode steps the request still needs
     * @param load           queued+running at the chosen replica
     * @param deferrals      defers this request has already consumed
     */
    AdmissionDecision decide(Seconds now, Seconds arrival, int output_tokens,
                             int load, int deferrals) const
    {
        if (!config_.enabled() || !observed_)
            return AdmissionDecision::Admit; // optimistic cold start
        const Seconds predicted =
            (now - arrival) +
            static_cast<double>(load + 1 + output_tokens) * step_estimate_;
        if (predicted <= config_.target_p99_s)
            return AdmissionDecision::Admit;
        if (config_.admission == AdmissionMode::Defer &&
            deferrals < config_.max_defers)
            return AdmissionDecision::Defer;
        return AdmissionDecision::Reject;
    }

  private:
    SloConfig config_;
    Seconds step_estimate_ = 0.0;
    bool observed_ = false;
};

} // namespace smartinf::ctrl

#endif // SMARTINF_CTRL_ADMISSION_H
