/**
 * @file
 * The queue-driven autoscale controller: windowed signal accumulation plus
 * the hysteretic scale-up/scale-down decision of AutoscaleConfig. Pure
 * decision state — the serve layer samples fleet load into it, reports
 * per-request SLO attainment, and asks for a verdict once per window tick;
 * warming-up, draining, and retiring replicas are the caller's job (they
 * involve the simulator). Draw-free: autoscaling alone never consumes the
 * ctrl stream.
 */
#ifndef SMARTINF_CTRL_AUTOSCALER_H
#define SMARTINF_CTRL_AUTOSCALER_H

#include "common/units.h"
#include "ctrl/ctrl_config.h"

namespace smartinf::ctrl {

/** What the autoscaler wants done at a window boundary. */
enum class ScaleAction { None, ScaleUp, ScaleDown };

class Autoscaler {
  public:
    explicit Autoscaler(const AutoscaleConfig &config) : config_(config)
    {
        // Allow a decision in the very first window: pre-history counts as
        // a satisfied cooldown, not a blocking one.
        last_action_ = -config_.cooldown_s;
    }

    /** Accumulate one load sample: total queued+running across the fleet
     *  over the currently active replica count. Sampled at every dispatch
     *  and at each tick, so an idle window still has one sample. */
    void sampleLoad(int fleet_load, int active_replicas)
    {
        load_sum_ += static_cast<double>(fleet_load) /
                     static_cast<double>(active_replicas < 1 ? 1
                                                             : active_replicas);
        ++load_samples_;
    }

    /** Accumulate one retired request's SLO verdict. */
    void sampleAttainment(bool attained)
    {
        ++retired_;
        if (attained)
            ++attained_;
    }

    /** Windowed mean load per active replica (0 with no samples). */
    double windowLoad() const
    {
        return load_samples_ ? load_sum_ / load_samples_ : 0.0;
    }

    /** Windowed SLO attainment rate (1 with no retirements). */
    double windowAttainment() const
    {
        return retired_ ? static_cast<double>(attained_) / retired_ : 1.0;
    }

    /**
     * Evaluate at a window boundary and reset the window. `active` counts
     * replicas serving dispatches (draining replicas are already excluded:
     * they still hold work but take no dispatches, so they do not count
     * toward the floor), `warming` replicas mid warm-up (they count
     * against max_replicas — a burst cannot queue up more warm-ups than
     * the ceiling).
     */
    ScaleAction evaluate(Seconds now, int active, int warming)
    {
        const double load = windowLoad();
        const double attainment = windowAttainment();
        load_sum_ = 0.0;
        load_samples_ = 0;
        retired_ = 0;
        attained_ = 0;
        if (!config_.enabled || now - last_action_ < config_.cooldown_s)
            return ScaleAction::None;
        const bool pressure =
            load > config_.scale_up_depth ||
            (config_.min_attainment > 0.0 &&
             attainment < config_.min_attainment);
        if (pressure && active + warming < config_.max_replicas) {
            last_action_ = now;
            return ScaleAction::ScaleUp;
        }
        const bool idle = load < config_.scale_down_depth &&
                          (config_.min_attainment <= 0.0 ||
                           attainment >= config_.min_attainment);
        if (idle && warming == 0 && active > config_.min_replicas) {
            last_action_ = now;
            return ScaleAction::ScaleDown;
        }
        return ScaleAction::None;
    }

  private:
    AutoscaleConfig config_;
    Seconds last_action_ = 0.0;
    double load_sum_ = 0.0;
    int load_samples_ = 0;
    int retired_ = 0;
    int attained_ = 0;
};

} // namespace smartinf::ctrl

#endif // SMARTINF_CTRL_AUTOSCALER_H
