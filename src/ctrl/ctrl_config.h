/**
 * @file
 * Configuration of the cluster control plane: the policy layer that sits
 * between the generated request stream and the per-replica batch schedulers
 * inside serve::InferenceWorkload. Four orthogonal features share one
 * master switch:
 *
 *  - dispatch policies  — which replica a request is routed to
 *                          (round-robin / join-shortest-queue /
 *                          power-of-two-choices),
 *  - SLO admission      — reject or defer requests whose predicted
 *                          completion misses a latency SLO,
 *  - replica autoscaling — grow/shrink the active replica set on windowed
 *                          queue-depth / SLO-attainment signals, paying a
 *                          real warm-up (parameter prefill) cost per
 *                          scale-up and draining before every retire,
 *  - priority classes   — a two-class request mix with optional preemption
 *                          of running decode batches.
 *
 * Disabled by default — and inert by contract when disabled: no fifth
 * stream is drawn, no tick event is armed, requests shard exactly as
 * `id % replicas`, and every pinned scenario's output stays bit-identical
 * to the pre-control-plane build.
 *
 * Determinism contract: the control plane owns a fifth derived PRNG stream,
 * Rng(ctrlSeed(seed)) — the arrival/length/prefix/fault streams never move
 * when control-plane knobs change. Unlike those four, the fifth stream is
 * consumed *lazily inside deterministic event callbacks* (a dispatch
 * decision cannot be pre-drawn: it reads queue depths that exist only at
 * dispatch time). Event order is deterministic, so the draw sequence — and
 * every result — still is. RoundRobin and the all-zero priority mix draw
 * nothing at all, which is why they leave the seed dead in the RunSpec hash
 * (see drawsRandomness()).
 */
#ifndef SMARTINF_CTRL_CTRL_CONFIG_H
#define SMARTINF_CTRL_CTRL_CONFIG_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"

namespace smartinf::ctrl {

/** Replica-selection policy applied to every dispatched request. */
enum class DispatchPolicy {
    RoundRobin,        ///< request id modulo active replicas (draw-free)
    JoinShortestQueue, ///< least queued+running; ties drawn from ctrl stream
    PowerOfTwoChoices, ///< probe two replicas from the ctrl stream, pick shorter
};

const char *dispatchPolicyName(DispatchPolicy policy);
std::optional<DispatchPolicy> dispatchPolicyFromName(const std::string &name);
std::vector<DispatchPolicy> allDispatchPolicies();

/** What SLO admission control does with a predicted-miss request. */
enum class AdmissionMode {
    Off,    ///< admit everything (admission disabled)
    Reject, ///< turn predicted misses away immediately
    Defer,  ///< re-try admission after defer_delay, up to max_defers, then reject
};

const char *admissionModeName(AdmissionMode mode);
std::optional<AdmissionMode> admissionModeFromName(const std::string &name);
std::vector<AdmissionMode> allAdmissionModes();

/**
 * Latency-SLO admission control. The predictor is intentionally simple and
 * observable-driven: service time is estimated from an EWMA of *observed*
 * scheduler step times, and a request joining a replica with L requests
 * ahead of it is predicted to finish at
 *
 *     now + (L + 1 + output_tokens) * step_estimate
 *
 * (L steps to drain the queue ahead, one prefill, one step per decoded
 * token — a deliberate upper-bound model: continuous batching overlaps
 * requests, so attained latency is usually better than predicted). Until
 * the first step completes there is no estimate and everything is admitted
 * (optimistic cold start).
 */
struct SloConfig {
    AdmissionMode admission = AdmissionMode::Off;
    /** The latency SLO: predicted completion beyond arrival + target is a
     *  miss. Must be positive when admission is armed. Also the threshold
     *  for the windowed SLO-attainment signal (autoscaling, metrics). */
    Seconds target_p99_s = 0.0;
    /** Defer mode: how long a deferred request waits before re-trying
     *  admission (hashed only under Defer). */
    Seconds defer_delay_s = 0.5;
    /** Defer mode: defers allowed before the request is rejected. */
    int max_defers = 4;

    bool enabled() const { return admission != AdmissionMode::Off; }
    std::vector<std::string> validate() const;
};

/**
 * Queue-driven replica autoscaling. The fleet is built at its maximum size
 * (hardware exists for every replica); autoscaling governs which replicas
 * are *active*. Every autoscale window the controller compares the
 * windowed mean load per active replica (and, when an SLO target is set,
 * the windowed attainment rate) against the thresholds:
 *
 *  - scale UP   when mean load/replica > scale_up_depth, or attainment
 *               drops below min_attainment;
 *  - scale DOWN when mean load/replica < scale_down_depth and attainment
 *               is healthy.
 *
 * Scale-up is not free: the new replica streams its full parameter set
 * (one warm-up prefill through serve::InferenceBuilder) before it joins
 * the dispatch set. Scale-down drains first — the victim replica stops
 * receiving dispatches and retires only once its queue and running batch
 * are empty (the graceful mirror of the fault layer's crash drain).
 * Decisions are separated by at least `cooldown_s`.
 */
struct AutoscaleConfig {
    bool enabled = false;
    int min_replicas = 1; ///< initial and minimum active replicas
    int max_replicas = 1; ///< ceiling (clamped to the fleet size at build)
    Seconds window_s = 5.0;   ///< signal window = evaluation period
    Seconds cooldown_s = 10.0; ///< minimum time between scaling decisions
    double scale_up_depth = 4.0;   ///< mean queued+running per active replica
    double scale_down_depth = 1.0; ///< idle threshold for draining a replica
    /** Scale up when windowed SLO attainment falls below this (0 disables;
     *  requires slo.target_p99_s to define attainment). */
    double min_attainment = 0.0;

    std::vector<std::string> validate() const;
};

/**
 * Two-class priority mix. A fraction of requests (drawn from the ctrl
 * stream, one uniform per request in id order, before any dispatch draw)
 * is tagged high priority. The batch scheduler admits the highest-priority
 * queued request first (FIFO among equals — with the default all-zero mix
 * this degenerates to exactly the old front-of-queue order), and with
 * `preempt` set a high-priority arrival at a full replica evicts the
 * lowest-priority running request: the in-flight step is revoked through
 * the TaskGraph revocation domain, the victim's KV is dropped, and it
 * re-enters the queue to pay a full re-prefill.
 */
struct PriorityConfig {
    double high_fraction = 0.0; ///< P(request is high priority), in [0, 1]
    bool preempt = false;       ///< high arrivals may evict running low requests

    bool enabled() const { return high_fraction > 0.0; }
    std::vector<std::string> validate() const;
};

/**
 * The control-plane configuration carried by serve::ServeConfig. Every
 * field affects simulated results when the master switch is on and
 * therefore joins the RunSpec hash (src/exp/run_spec.cc) with semantic
 * normalization: nothing is hashed while disabled, SLO knobs only while
 * admission is armed (defer knobs only under Defer), autoscale knobs only
 * while autoscaling is on, and the preempt flag only while the priority
 * mix is non-degenerate.
 */
struct CtrlConfig {
    /** Master switch. Off ⇒ byte-inert: dispatch is `id % replicas`. */
    bool enabled = false;
    DispatchPolicy policy = DispatchPolicy::RoundRobin;
    SloConfig slo;
    AutoscaleConfig autoscale;
    PriorityConfig priority;

    /**
     * Does this configuration consume the fifth PRNG stream? JSQ/P2C draw
     * tie-breaks/probes and the priority mix draws per-request classes;
     * RoundRobin with an all-zero mix draws nothing. Gates seed revival in
     * the RunSpec hash exactly like samplesLengths()/sharesPrefixes().
     */
    bool drawsRandomness() const
    {
        return enabled && (policy != DispatchPolicy::RoundRobin ||
                           priority.enabled());
    }

    std::vector<std::string> validate() const;
};

/**
 * The fifth derived PRNG stream (after arrivals, lengths, prefixes,
 * faults): every control-plane draw — priority classes pre-sim, dispatch
 * tie-breaks/probes in-sim — comes from one Rng(ctrlSeed(seed)), so
 * toggling control-plane knobs never moves the other four streams.
 */
inline std::uint64_t
ctrlSeed(std::uint64_t seed)
{
    return seed ^ 0xb97f4a7c159e3779ull;
}

} // namespace smartinf::ctrl

#endif // SMARTINF_CTRL_CTRL_CONFIG_H
