#include "ctrl/dispatch.h"

#include "common/logging.h"

namespace smartinf::ctrl {

namespace {

int
pickJoinShortestQueue(const std::vector<int> &candidates,
                      const std::vector<int> &loads, Rng &rng)
{
    int best_load = loads[0];
    for (std::size_t i = 1; i < loads.size(); ++i)
        if (loads[i] < best_load)
            best_load = loads[i];
    // Collect the tied minimum set; a single winner costs no draw, so a
    // heterogeneous fleet consumes the stream only when it is genuinely
    // ambiguous.
    std::vector<int> tied;
    for (std::size_t i = 0; i < loads.size(); ++i)
        if (loads[i] == best_load)
            tied.push_back(candidates[i]);
    if (tied.size() == 1)
        return tied[0];
    return tied[rng.uniformInt(static_cast<std::uint64_t>(tied.size()))];
}

int
pickPowerOfTwoChoices(const std::vector<int> &candidates,
                      const std::vector<int> &loads, Rng &rng)
{
    const std::uint64_t n = candidates.size();
    if (n == 1)
        return candidates[0]; // no choice, no draw
    // Two distinct probes: the second is drawn from the remaining n-1
    // slots and shifted past the first, so both draws are uniform and the
    // probe pair never degenerates.
    const std::uint64_t i = rng.uniformInt(n);
    std::uint64_t j = rng.uniformInt(n - 1);
    if (j >= i)
        ++j;
    // Strictly-shorter wins; a tie keeps the first probe (deterministic,
    // no extra draw).
    return loads[j] < loads[i] ? candidates[j] : candidates[i];
}

} // namespace

int
pickReplica(DispatchPolicy policy, int request_id,
            const std::vector<int> &candidates,
            const std::vector<int> &loads, Rng &rng)
{
    SI_ASSERT(!candidates.empty(), "pickReplica with no candidates");
    SI_ASSERT(candidates.size() == loads.size(),
              "candidate/load vectors disagree");
    switch (policy) {
      case DispatchPolicy::RoundRobin:
        // Over the full fleet this is exactly the legacy `id % N` shard.
        return candidates[static_cast<std::size_t>(request_id) %
                          candidates.size()];
      case DispatchPolicy::JoinShortestQueue:
        return pickJoinShortestQueue(candidates, loads, rng);
      case DispatchPolicy::PowerOfTwoChoices:
        return pickPowerOfTwoChoices(candidates, loads, rng);
    }
    SI_ASSERT(false, "unreachable dispatch policy");
    return candidates[0];
}

} // namespace smartinf::ctrl
