/**
 * @file
 * Public API of the Smart-Infinity reproduction.
 *
 * Two coupled layers (see DESIGN.md):
 *  - SmartInfinityCluster — the *functional* system: N emulated SmartSSDs
 *    holding flattened parameter shards and optimizer states, FPGA-side
 *    updater/decompressor kernels, the two-thread internal transfer
 *    handler, and optional SmartComp Top-K compression. It implements
 *    nn::UpdateBackend, so any model training loop can run its optimizer
 *    steps "near storage" exactly as the paper's DeepSpeed integration
 *    does.
 *  - The *performance* layer (train::makeEngine / runWithSpeedup) — the
 *    calibrated discrete-event model reproducing the paper's timing
 *    results. Re-exported here for one-stop consumption.
 *
 * Multi-node data-parallel scale-out lives one layer up in src/dist/:
 * dist::DataParallelCluster replicates a SmartInfinityCluster per node
 * behind the same nn::UpdateBackend seam, and train::makeEngine extends
 * the performance model across servers (num_nodes > 1 dispatches to
 * dist::DistributedEngine) with ring-collective gradient sync over the
 * NIC fabric. Declarative sweeps over either layer live in src/exp/
 * (ExperimentBuilder, SweepRunner, the scenario registry driving the
 * smartinf_bench CLI).
 */
#ifndef SMARTINF_CORE_SMART_INFINITY_H
#define SMARTINF_CORE_SMART_INFINITY_H

#include <memory>
#include <string>
#include <vector>

#include "accel/hls_module.h"
#include "csd/csd.h"
#include "nn/trainer.h"
#include "train/engine.h"
#include "train/transfer_handler.h"

namespace smartinf {

/** Configuration of a functional Smart-Infinity cluster. */
struct ClusterConfig {
    /** Number of CSDs; parameters are distributed equally (§IV-D). */
    int num_csds = 2;
    optim::OptimizerKind optimizer = optim::OptimizerKind::Adam;
    optim::Hyperparams hyperparams;
    /** Use the optimized internal transfer handler (§IV-B). */
    bool optimized_handler = true;
    /** Enable SmartComp gradient compression (§IV-C). */
    bool compression = false;
    /** Fraction of gradient elements kept by Top-K (wire = 2x this). */
    double keep_fraction = 0.01;
    /** Elements per subgroup/tasklet streamed through the FPGA. */
    std::size_t subgroup_elems = 1 << 14;
    /** Device characteristics (defaults to a Samsung SmartSSD). */
    csd::CsdSpec csd_spec = csd::CsdSpec::smartSsd();

    /**
     * Check the configuration for user errors. Returns every violated
     * precondition as an actionable message; empty means usable. The
     * cluster constructor calls this and reports the first error via
     * fatal() instead of asserting mid-construction.
     */
    std::vector<std::string> validate() const;
};

/**
 * A functional multi-CSD Smart-Infinity deployment. Thread-compatible (one
 * step at a time); internally uses the two-thread transfer handler.
 */
class SmartInfinityCluster final : public nn::UpdateBackend
{
  public:
    explicit SmartInfinityCluster(const ClusterConfig &config);
    ~SmartInfinityCluster() override;

    /** @name nn::UpdateBackend @{ */
    void initialize(const float *params, std::size_t n) override;
    void step(const float *grads, std::size_t n, uint64_t t) override;
    const float *masterParams() const override;
    std::size_t paramCount() const override;
    const char *backendName() const override;
    /** @} */

    int numCsds() const { return static_cast<int>(csds_.size()); }
    const csd::Csd &csd(int idx) const { return *csds_[idx]; }
    csd::Csd &csd(int idx) { return *csds_[idx]; }

    /** Shard boundaries: element range [offset, offset+len) of CSD idx. */
    std::size_t shardOffset(int idx) const;
    std::size_t shardLength(int idx) const;

    /**
     * Gradient bytes that crossed the host->storage interconnect on the
     * last step() (wire format: dense, or index+value pairs — the paper's
     * Table I "Gradients / Write" column).
     */
    double lastGradWireBytes() const { return last_wire_bytes_; }

    /** Run the HLS-template sanity checkers on every installed kernel. */
    bool sanityCheckModules() const;

    const ClusterConfig &config() const { return config_; }

  private:
    void requireInitialized() const;

    ClusterConfig config_;
    std::vector<std::unique_ptr<csd::Csd>> csds_;
    std::vector<train::ShardLayout> layouts_;
    std::vector<std::unique_ptr<train::TransferHandler>> handlers_;
    std::vector<float> master_cache_;
    double last_wire_bytes_ = 0.0;
    bool initialized_ = false;
};

} // namespace smartinf

#endif // SMARTINF_CORE_SMART_INFINITY_H
