#include "core/smart_infinity.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "compress/topk.h"

namespace smartinf {

namespace {

const char *
updaterNameFor(optim::OptimizerKind kind)
{
    switch (kind) {
      case optim::OptimizerKind::Adam: return "adam";
      case optim::OptimizerKind::AdamW: return "adamw";
      case optim::OptimizerKind::SgdMomentum: return "sgd";
      case optim::OptimizerKind::AdaGrad: return "adagrad";
    }
    panic("unknown optimizer kind");
}

} // namespace

std::vector<std::string>
ClusterConfig::validate() const
{
    std::vector<std::string> errors;
    if (num_csds < 1)
        errors.push_back("num_csds must be >= 1, got " +
                         std::to_string(num_csds));
    if (!(keep_fraction > 0.0 && keep_fraction <= 1.0))
        errors.push_back("keep_fraction must be in (0, 1], got " +
                         std::to_string(keep_fraction));
    if (subgroup_elems == 0)
        errors.push_back("subgroup_elems must be >= 1, got 0");
    return errors;
}

SmartInfinityCluster::SmartInfinityCluster(const ClusterConfig &config)
    : config_(config)
{
    const auto errors = config.validate();
    SI_REQUIRE(errors.empty(), "invalid ClusterConfig: ",
               train::joinErrors(errors));
}

SmartInfinityCluster::~SmartInfinityCluster() = default;

std::size_t
SmartInfinityCluster::shardOffset(int idx) const
{
    std::size_t offset = 0;
    for (int d = 0; d < idx; ++d)
        offset += layouts_[d].elems;
    return offset;
}

std::size_t
SmartInfinityCluster::shardLength(int idx) const
{
    return layouts_[idx].elems;
}

void
SmartInfinityCluster::initialize(const float *params, std::size_t n)
{
    SI_REQUIRE(n > 0, "cannot initialize with zero parameters");
    csds_.clear();
    layouts_.clear();
    handlers_.clear();
    master_cache_.assign(params, params + n);

    const int aux = optim::auxStateCount(config_.optimizer);
    const std::size_t per_csd =
        (n + config_.num_csds - 1) / config_.num_csds;
    auto &registry = accel::ModuleRegistry::instance();

    std::size_t offset = 0;
    for (int d = 0; d < config_.num_csds; ++d) {
        const std::size_t len = std::min(per_csd, n - offset);
        SI_REQUIRE(len > 0, "more CSDs than parameter shards; reduce "
                            "num_csds for this model");
        train::ShardLayout layout{len, aux};

        auto device = std::make_unique<csd::Csd>(
            "csd" + std::to_string(d), config_.csd_spec, layout.totalBytes());
        // Install the "device binary" (Fig 8): updater + decompressor.
        device->installUpdater(registry.makeUpdater(
            updaterNameFor(config_.optimizer), config_.hyperparams));
        if (config_.compression)
            device->installDecompressor(registry.makeDecompressor("topk"));

        // Optimizer states are initially stored in the storage (Fig 1):
        // master parameters at offset 0, aux states zeroed behind them.
        device->ssd().writeFloats(params + offset, len,
                                  layout.masterOffset());
        const std::vector<float> zeros(len, 0.0f);
        for (int a = 0; a < aux; ++a)
            device->ssd().writeFloats(zeros.data(), len, layout.auxOffset(a));

        train::TransferHandler::Config handler_config;
        handler_config.subgroup_elems =
            std::min(config_.subgroup_elems, len);
        handler_config.optimized = config_.optimized_handler;
        handlers_.push_back(std::make_unique<train::TransferHandler>(
            *device, layout, handler_config));
        layouts_.push_back(layout);
        csds_.push_back(std::move(device));
        offset += len;
    }
    SI_ASSERT(offset == n, "shard partition does not cover all parameters");
    initialized_ = true;
}

void
SmartInfinityCluster::requireInitialized() const
{
    SI_REQUIRE(initialized_, "cluster not initialized; call initialize()");
}

void
SmartInfinityCluster::step(const float *grads, std::size_t n, uint64_t t)
{
    requireInitialized();
    SI_REQUIRE(n == master_cache_.size(), "gradient size mismatch: ", n,
               " vs ", master_cache_.size());
    last_wire_bytes_ = 0.0;

    std::size_t offset = 0;
    for (std::size_t d = 0; d < csds_.size(); ++d) {
        const std::size_t len = layouts_[d].elems;
        if (config_.compression) {
            // SmartComp: the GPU compresses each owner shard's gradients;
            // only the index+value pairs cross the interconnect, and the
            // FPGA decompressor rebuilds the dense vector (Fig 6).
            compress::TopKCompressor compressor(config_.keep_fraction);
            const auto sparse = compressor.compress(grads + offset, len);
            last_wire_bytes_ += static_cast<double>(sparse.wireBytes());
            handlers_[d]->runUpdateCompressed(sparse, t,
                                              master_cache_.data() + offset);
        } else {
            // Dense gradients are offloaded to the owner CSD's SSD during
            // the backward pass (Fig 1(b) step 4).
            csds_[d]->ssd().writeFloats(grads + offset, len,
                                        layouts_[d].gradOffset());
            last_wire_bytes_ += static_cast<double>(len) * sizeof(float);
            handlers_[d]->runUpdate(t, master_cache_.data() + offset);
        }
        offset += len;
    }
}

const float *
SmartInfinityCluster::masterParams() const
{
    requireInitialized();
    return master_cache_.data();
}

std::size_t
SmartInfinityCluster::paramCount() const
{
    return master_cache_.size();
}

const char *
SmartInfinityCluster::backendName() const
{
    if (config_.compression)
        return "smart-infinity (SU+O+C)";
    return config_.optimized_handler ? "smart-infinity (SU+O)"
                                     : "smart-infinity (SU)";
}

bool
SmartInfinityCluster::sanityCheckModules() const
{
    requireInitialized();
    for (const auto &device : csds_) {
        const auto updater_report =
            accel::sanityCheckUpdater(*device->updater());
        if (!updater_report.passed) {
            warn("updater sanity check failed on ", device->name(), ": ",
                 updater_report.detail);
            return false;
        }
        if (device->decompressor() != nullptr) {
            const auto decomp_report = accel::sanityCheckDecompressor(
                *device->decompressor(), config_.keep_fraction);
            if (!decomp_report.passed) {
                warn("decompressor sanity check failed on ", device->name(),
                     ": ", decomp_report.detail);
                return false;
            }
        }
    }
    return true;
}

} // namespace smartinf
