/**
 * @file
 * Behavioral model of the Smart-Infinity general updater (paper Fig 7,
 * §V-A): parallel updater PEs built from SIMD AXPBY units stream subgroups
 * of (gradient, optimizer states, target parameters) through BRAM-sized
 * chunks. The arithmetic is exactly optim/update_math.h, so results are
 * bit-identical to the host reference regardless of chunking — a property
 * the test suite asserts.
 */
#ifndef SMARTINF_ACCEL_UPDATER_H
#define SMARTINF_ACCEL_UPDATER_H

#include <cstddef>
#include <cstdint>
#include <memory>

#include "accel/fpga_resources.h"
#include "common/units.h"
#include "optim/optimizer.h"

namespace smartinf::accel {

/** Microarchitectural shape of the updater (Fig 7). */
struct UpdaterGeometry {
    /** Processing elements working in parallel. */
    unsigned num_pes = 4;
    /** AXPBY lanes per PE. */
    unsigned lanes_per_pe = 16;
    /** Elements per BRAM chunk (the paper's S). */
    std::size_t chunk_elems = 4096;
};

/**
 * A synthesized updater kernel for one optimizer family. The behavioral
 * path (processSubgroup) computes real values; footprint() and
 * modelThroughput() feed the resource table and the timing model.
 */
class UpdaterModule
{
  public:
    virtual ~UpdaterModule() = default;

    virtual optim::OptimizerKind kind() const = 0;

    /** Hyperparameters the kernel was synthesized with. */
    virtual const optim::Hyperparams &hyperparams() const = 0;

    /**
     * Update a subgroup in accelerator memory. Semantics identical to
     * Optimizer::step but processed chunk-by-chunk like the hardware
     * pipeline. @p step is the 1-based global step (bias correction).
     */
    virtual void processSubgroup(float *master, const float *grad,
                                 float *const *states, std::size_t n,
                                 uint64_t step) const = 0;

    /** Synthesis footprint on the KU15P (Table III calibration). */
    virtual ModuleFootprint footprint() const = 0;

    /**
     * Modeled sustained throughput in bytes of optimizer-state stream per
     * second. The paper measures > 7 GB/s for the Adam updater (Fig 14).
     */
    virtual BytesPerSec modelThroughput() const = 0;

    const UpdaterGeometry &geometry() const { return geometry_; }

  protected:
    explicit UpdaterModule(const UpdaterGeometry &geometry)
        : geometry_(geometry)
    {
    }
    UpdaterGeometry geometry_;
};

/** Build the updater kernel for @p kind with hyperparameters @p hp. */
std::unique_ptr<UpdaterModule> makeUpdater(optim::OptimizerKind kind,
                                           const optim::Hyperparams &hp,
                                           const UpdaterGeometry &geometry = {});

} // namespace smartinf::accel

#endif // SMARTINF_ACCEL_UPDATER_H
