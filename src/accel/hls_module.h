/**
 * @file
 * The user-facing customization surface of the accelerator (paper §VI,
 * Fig 8 "User Level"): Smart-Infinity ships HLS templates for custom
 * updaters/decompressors, each with a sanity checker (logic vs. the host
 * reference) and a performance analyzer. This module reproduces that flow:
 * a registry of named module factories plus verification and throughput
 * analysis utilities.
 */
#ifndef SMARTINF_ACCEL_HLS_MODULE_H
#define SMARTINF_ACCEL_HLS_MODULE_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "accel/decompressor.h"
#include "accel/updater.h"

namespace smartinf::accel {

/** Result of checking a module's logic against the host reference. */
struct SanityReport {
    bool passed = false;
    std::size_t elements_checked = 0;
    /** Maximum absolute divergence observed (0 for bit-identical). */
    double max_abs_diff = 0.0;
    std::string detail;
};

/** Result of the performance analyzer. */
struct PerfReport {
    /** Modeled device throughput (bytes of stream per second). */
    BytesPerSec modeled_throughput = 0.0;
    /** Host emulation rate while checking (elements per second). */
    double emulation_elems_per_sec = 0.0;
    /** Whether the modeled throughput keeps up with SSD read bandwidth. */
    bool keeps_up_with_ssd = false;
};

/**
 * Verify an updater module against the host reference optimizer over
 * @p steps random update steps of @p n elements. Passes only on
 * bit-identical results (the design guarantees shared arithmetic).
 */
SanityReport sanityCheckUpdater(const UpdaterModule &module,
                                std::size_t n = 1 << 14,
                                unsigned steps = 4, uint64_t seed = 1234);

/** Verify a decompressor against the reference scatter. */
SanityReport sanityCheckDecompressor(const DecompressorModule &module,
                                     double keep_fraction = 0.01,
                                     std::size_t n = 1 << 14,
                                     uint64_t seed = 1234);

/** Run the performance analyzer for an updater. */
PerfReport analyzeUpdater(const UpdaterModule &module,
                          std::size_t n = 1 << 16);

/** Run the performance analyzer for a decompressor. */
PerfReport analyzeDecompressor(const DecompressorModule &module,
                               double keep_fraction = 0.01,
                               std::size_t n = 1 << 16);

/**
 * Registry of named module factories, so user-defined kernels plug into the
 * framework exactly like the built-ins ("adam", "adamw", "sgd", "adagrad";
 * decompressor "topk").
 */
class ModuleRegistry
{
  public:
    using UpdaterFactory = std::function<std::unique_ptr<UpdaterModule>(
        const optim::Hyperparams &)>;
    using DecompressorFactory =
        std::function<std::unique_ptr<DecompressorModule>()>;

    /** Process-wide registry preloaded with the built-in modules. */
    static ModuleRegistry &instance();

    void registerUpdater(const std::string &name, UpdaterFactory factory);
    void registerDecompressor(const std::string &name,
                              DecompressorFactory factory);

    /** Instantiate by name; fatal() on unknown names. */
    std::unique_ptr<UpdaterModule> makeUpdater(const std::string &name,
                                               const optim::Hyperparams &hp) const;
    std::unique_ptr<DecompressorModule>
    makeDecompressor(const std::string &name) const;

    std::vector<std::string> updaterNames() const;
    std::vector<std::string> decompressorNames() const;

  private:
    ModuleRegistry();

    std::map<std::string, UpdaterFactory> updaters_;
    std::map<std::string, DecompressorFactory> decompressors_;
};

} // namespace smartinf::accel

#endif // SMARTINF_ACCEL_HLS_MODULE_H
