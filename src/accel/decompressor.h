/**
 * @file
 * Behavioral model of the Smart-Infinity general decompressor (paper Fig 7,
 * §V-B): the Top-K decompressor streams S-sized batches of (index, value)
 * pairs from accelerator memory, routes each value to its position within
 * the current subgroup's gradient buffer, and leaves the rest zero. It
 * contains no arithmetic — just routing — which is why its footprint is
 * tiny (Table III adds only ~0.5% LUTs over the bare Adam updater).
 */
#ifndef SMARTINF_ACCEL_DECOMPRESSOR_H
#define SMARTINF_ACCEL_DECOMPRESSOR_H

#include <cstddef>
#include <cstdint>
#include <memory>

#include "accel/fpga_resources.h"
#include "common/units.h"
#include "compress/topk.h"

namespace smartinf::accel {

/** Shape of the decompressor pipeline. */
struct DecompressorGeometry {
    /** (index, value) pairs per streamed batch (the paper's S). */
    std::size_t batch_pairs = 4096;
};

/** A synthesized decompressor kernel. */
class DecompressorModule
{
  public:
    virtual ~DecompressorModule() = default;

    /**
     * Reconstruct the dense gradient slice for the subgroup that owns
     * global indices [subgroup_base, subgroup_base + n). Entries of
     * @p sparse outside that range are ignored (they belong to other
     * subgroups / other CSDs). @p out is fully overwritten.
     */
    virtual void decompressSubgroup(const compress::SparseGradient &sparse,
                                    std::size_t subgroup_base, float *out,
                                    std::size_t n) const = 0;

    virtual ModuleFootprint footprint() const = 0;

    /** Modeled throughput in *output* (dense) bytes per second. */
    virtual BytesPerSec modelThroughput() const = 0;
};

/** Build the Top-K scatter decompressor. */
std::unique_ptr<DecompressorModule>
makeTopKDecompressor(const DecompressorGeometry &geometry = {});

} // namespace smartinf::accel

#endif // SMARTINF_ACCEL_DECOMPRESSOR_H
