#include "accel/hls_module.h"

#include <chrono>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/random.h"
#include "storage/block_device.h"

namespace smartinf::accel {

namespace {

/** Fill @p v with small-magnitude gradients (training-like distribution). */
void
fillGradients(std::vector<float> &v, Rng &rng)
{
    for (auto &x : v)
        x = static_cast<float>(rng.normal(0.0, 1e-2));
}

} // namespace

SanityReport
sanityCheckUpdater(const UpdaterModule &module, std::size_t n, unsigned steps,
                   uint64_t seed)
{
    SanityReport report;
    report.elements_checked = n * steps;

    Rng rng(seed);
    // Compare against the host reference under the module's own
    // hyperparameters to isolate the *logic*.
    const auto reference =
        optim::makeOptimizer(module.kind(), module.hyperparams());

    const int aux = optim::auxStateCount(module.kind());
    std::vector<float> master_ref(n), master_dev(n), grad(n);
    std::vector<std::vector<float>> states_ref(aux), states_dev(aux);
    for (int s = 0; s < aux; ++s) {
        states_ref[s].assign(n, 0.0f);
        states_dev[s].assign(n, 0.0f);
    }
    for (std::size_t i = 0; i < n; ++i)
        master_ref[i] = master_dev[i] = static_cast<float>(rng.normal());

    std::vector<float *> ref_ptrs, dev_ptrs;
    for (int s = 0; s < aux; ++s) {
        ref_ptrs.push_back(states_ref[s].data());
        dev_ptrs.push_back(states_dev[s].data());
    }

    for (unsigned t = 1; t <= steps; ++t) {
        fillGradients(grad, rng);
        reference->step(master_ref.data(), grad.data(), ref_ptrs.data(), n, t);
        module.processSubgroup(master_dev.data(), grad.data(),
                               dev_ptrs.data(), n, t);
    }

    for (std::size_t i = 0; i < n; ++i) {
        const double diff =
            std::fabs(static_cast<double>(master_ref[i]) - master_dev[i]);
        report.max_abs_diff = std::max(report.max_abs_diff, diff);
    }
    report.passed = (report.max_abs_diff == 0.0);
    report.detail = report.passed
                        ? "bit-identical to host reference"
                        : "diverges from host reference";
    return report;
}

SanityReport
sanityCheckDecompressor(const DecompressorModule &module, double keep_fraction,
                        std::size_t n, uint64_t seed)
{
    SanityReport report;
    report.elements_checked = n;

    Rng rng(seed);
    std::vector<float> dense(n);
    fillGradients(dense, rng);

    compress::TopKCompressor compressor(keep_fraction);
    const auto sparse = compressor.compress(dense.data(), n);

    std::vector<float> reference(n), device(n, 42.0f);
    compress::TopKCompressor::decompress(sparse, reference.data(), n);
    module.decompressSubgroup(sparse, 0, device.data(), n);

    for (std::size_t i = 0; i < n; ++i) {
        const double diff =
            std::fabs(static_cast<double>(reference[i]) - device[i]);
        report.max_abs_diff = std::max(report.max_abs_diff, diff);
    }
    report.passed = (report.max_abs_diff == 0.0);
    report.detail = report.passed ? "scatter matches reference"
                                  : "scatter mismatch";
    return report;
}

PerfReport
analyzeUpdater(const UpdaterModule &module, std::size_t n)
{
    PerfReport report;
    report.modeled_throughput = module.modelThroughput();
    report.keeps_up_with_ssd =
        report.modeled_throughput >=
        storage::SsdSpec::smartSsdNvme().read_bandwidth;

    Rng rng(99);
    const int aux = optim::auxStateCount(module.kind());
    std::vector<float> master(n), grad(n);
    std::vector<std::vector<float>> states(aux);
    std::vector<float *> ptrs;
    for (int s = 0; s < aux; ++s) {
        states[s].assign(n, 0.0f);
        ptrs.push_back(states[s].data());
    }
    fillGradients(grad, rng);

    const auto begin = std::chrono::steady_clock::now();
    module.processSubgroup(master.data(), grad.data(), ptrs.data(), n, 1);
    const auto end = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(end - begin).count();
    report.emulation_elems_per_sec = secs > 0.0 ? n / secs : 0.0;
    return report;
}

PerfReport
analyzeDecompressor(const DecompressorModule &module, double keep_fraction,
                    std::size_t n)
{
    PerfReport report;
    report.modeled_throughput = module.modelThroughput();
    report.keeps_up_with_ssd =
        report.modeled_throughput >=
        storage::SsdSpec::smartSsdNvme().read_bandwidth;

    Rng rng(99);
    std::vector<float> dense(n), out(n);
    fillGradients(dense, rng);
    compress::TopKCompressor compressor(keep_fraction);
    const auto sparse = compressor.compress(dense.data(), n);

    const auto begin = std::chrono::steady_clock::now();
    module.decompressSubgroup(sparse, 0, out.data(), n);
    const auto end = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(end - begin).count();
    report.emulation_elems_per_sec = secs > 0.0 ? n / secs : 0.0;
    return report;
}

ModuleRegistry &
ModuleRegistry::instance()
{
    static ModuleRegistry registry;
    return registry;
}

ModuleRegistry::ModuleRegistry()
{
    registerUpdater("adam", [](const optim::Hyperparams &hp) {
        return accel::makeUpdater(optim::OptimizerKind::Adam, hp);
    });
    registerUpdater("adamw", [](const optim::Hyperparams &hp) {
        return accel::makeUpdater(optim::OptimizerKind::AdamW, hp);
    });
    registerUpdater("sgd", [](const optim::Hyperparams &hp) {
        return accel::makeUpdater(optim::OptimizerKind::SgdMomentum, hp);
    });
    registerUpdater("adagrad", [](const optim::Hyperparams &hp) {
        return accel::makeUpdater(optim::OptimizerKind::AdaGrad, hp);
    });
    registerDecompressor("topk",
                         []() { return makeTopKDecompressor(); });
}

void
ModuleRegistry::registerUpdater(const std::string &name,
                                UpdaterFactory factory)
{
    updaters_[name] = std::move(factory);
}

void
ModuleRegistry::registerDecompressor(const std::string &name,
                                     DecompressorFactory factory)
{
    decompressors_[name] = std::move(factory);
}

std::unique_ptr<UpdaterModule>
ModuleRegistry::makeUpdater(const std::string &name,
                            const optim::Hyperparams &hp) const
{
    auto it = updaters_.find(name);
    if (it == updaters_.end())
        fatal("unknown updater module: ", name);
    return it->second(hp);
}

std::unique_ptr<DecompressorModule>
ModuleRegistry::makeDecompressor(const std::string &name) const
{
    auto it = decompressors_.find(name);
    if (it == decompressors_.end())
        fatal("unknown decompressor module: ", name);
    return it->second();
}

std::vector<std::string>
ModuleRegistry::updaterNames() const
{
    std::vector<std::string> names;
    for (const auto &[name, factory] : updaters_)
        names.push_back(name);
    return names;
}

std::vector<std::string>
ModuleRegistry::decompressorNames() const
{
    std::vector<std::string> names;
    for (const auto &[name, factory] : decompressors_)
        names.push_back(name);
    return names;
}

} // namespace smartinf::accel
