#include "accel/fpga_resources.h"

#include "common/logging.h"

namespace smartinf::accel {

ModuleFootprint &
ModuleFootprint::operator+=(const ModuleFootprint &other)
{
    luts += other.luts;
    brams += other.brams;
    urams += other.urams;
    dsps += other.dsps;
    return *this;
}

FpgaBudget
FpgaBudget::ku15p()
{
    return FpgaBudget{522720, 984, 128, 1968};
}

void
FpgaResourceModel::place(const ModuleFootprint &module)
{
    ModuleFootprint after = total();
    after += module;
    if (after.luts > budget_.luts || after.brams > budget_.brams ||
        after.urams > budget_.urams || after.dsps > budget_.dsps) {
        fatal("module ", module.name, " does not fit the FPGA: needs ",
              after.luts, " LUTs / ", after.brams, " BRAMs / ", after.urams,
              " URAMs / ", after.dsps, " DSPs against budget ", budget_.luts,
              "/", budget_.brams, "/", budget_.urams, "/", budget_.dsps);
    }
    placed_.push_back(module);
}

void
FpgaResourceModel::clear()
{
    placed_.clear();
}

ModuleFootprint
FpgaResourceModel::total() const
{
    ModuleFootprint sum{"total", 0, 0, 0, 0};
    for (const auto &module : placed_)
        sum += module;
    return sum;
}

double
FpgaResourceModel::lutUtilization() const
{
    return static_cast<double>(total().luts) / budget_.luts;
}

double
FpgaResourceModel::bramUtilization() const
{
    return static_cast<double>(total().brams) / budget_.brams;
}

double
FpgaResourceModel::uramUtilization() const
{
    return static_cast<double>(total().urams) / budget_.urams;
}

double
FpgaResourceModel::dspUtilization() const
{
    return static_cast<double>(total().dsps) / budget_.dsps;
}

} // namespace smartinf::accel
