#include "accel/updater.h"

#include <algorithm>

#include "common/logging.h"

namespace smartinf::accel {

namespace {

/**
 * Shared chunking skeleton: stream the subgroup through BRAM-sized chunks,
 * applying @p body to each chunk. The hardware pipeline processes
 * (num_pes * lanes_per_pe) elements per cycle; functionally only the chunk
 * boundary matters (and must not matter for results — tested).
 */
template <typename Body>
void
forEachChunk(std::size_t n, std::size_t chunk_elems, Body &&body)
{
    for (std::size_t base = 0; base < n; base += chunk_elems) {
        const std::size_t len = std::min(chunk_elems, n - base);
        body(base, len);
    }
}

class AdamUpdater final : public UpdaterModule
{
  public:
    AdamUpdater(const optim::Hyperparams &hp, const UpdaterGeometry &geometry,
                bool decoupled_decay)
        : UpdaterModule(geometry), hp_(hp), decoupled_decay_(decoupled_decay)
    {
    }

    optim::OptimizerKind
    kind() const override
    {
        return decoupled_decay_ ? optim::OptimizerKind::AdamW
                                : optim::OptimizerKind::Adam;
    }

    const optim::Hyperparams &hyperparams() const override { return hp_; }

    void
    processSubgroup(float *master, const float *grad, float *const *states,
                    std::size_t n, uint64_t step) const override
    {
        float *mmt = states[0];
        float *var = states[1];
        forEachChunk(n, geometry_.chunk_elems,
                     [&](std::size_t base, std::size_t len) {
                         for (std::size_t i = base; i < base + len; ++i) {
                             if (decoupled_decay_) {
                                 optim::adamwElement(master[i], grad[i],
                                                     mmt[i], var[i], hp_,
                                                     step);
                             } else {
                                 optim::adamElement(master[i], grad[i],
                                                    mmt[i], var[i], hp_,
                                                    step);
                             }
                         }
                     });
    }

    ModuleFootprint
    footprint() const override
    {
        // Calibrated to Table III: Adam updater = 33.66% LUT, 27.13% BRAM,
        // 34.38% URAM, 11.03% DSP of the KU15P. AdamW adds the decay AXPBY.
        ModuleFootprint fp{"updater.adam", 175947, 267, 44, 217};
        if (decoupled_decay_) {
            fp.name = "updater.adamw";
            fp.luts += 2900;
            fp.dsps += 8;
        }
        return fp;
    }

    BytesPerSec
    modelThroughput() const override
    {
        // Fig 14: Adam updater sustains > 7 GB/s of state stream.
        return decoupled_decay_ ? GBps(7.0) : GBps(7.2);
    }

  private:
    optim::Hyperparams hp_;
    bool decoupled_decay_;
};

class SgdUpdater final : public UpdaterModule
{
  public:
    SgdUpdater(const optim::Hyperparams &hp, const UpdaterGeometry &geometry)
        : UpdaterModule(geometry), hp_(hp)
    {
    }

    optim::OptimizerKind
    kind() const override
    {
        return optim::OptimizerKind::SgdMomentum;
    }

    const optim::Hyperparams &hyperparams() const override { return hp_; }

    void
    processSubgroup(float *master, const float *grad, float *const *states,
                    std::size_t n, uint64_t /*step*/) const override
    {
        float *mmt = states[0];
        forEachChunk(n, geometry_.chunk_elems,
                     [&](std::size_t base, std::size_t len) {
                         for (std::size_t i = base; i < base + len; ++i)
                             optim::sgdMomentumElement(master[i], grad[i],
                                                       mmt[i], hp_);
                     });
    }

    ModuleFootprint
    footprint() const override
    {
        // One moving average instead of two: roughly 60% of Adam's logic.
        return ModuleFootprint{"updater.sgd", 108000, 190, 28, 132};
    }

    BytesPerSec modelThroughput() const override { return GBps(8.4); }

  private:
    optim::Hyperparams hp_;
};

class AdaGradUpdater final : public UpdaterModule
{
  public:
    AdaGradUpdater(const optim::Hyperparams &hp,
                   const UpdaterGeometry &geometry)
        : UpdaterModule(geometry), hp_(hp)
    {
    }

    optim::OptimizerKind
    kind() const override
    {
        return optim::OptimizerKind::AdaGrad;
    }

    const optim::Hyperparams &hyperparams() const override { return hp_; }

    void
    processSubgroup(float *master, const float *grad, float *const *states,
                    std::size_t n, uint64_t /*step*/) const override
    {
        float *accum = states[0];
        forEachChunk(n, geometry_.chunk_elems,
                     [&](std::size_t base, std::size_t len) {
                         for (std::size_t i = base; i < base + len; ++i)
                             optim::adagradElement(master[i], grad[i],
                                                   accum[i], hp_);
                     });
    }

    ModuleFootprint
    footprint() const override
    {
        // Needs the rsqrt path but only one state: between SGD and Adam.
        return ModuleFootprint{"updater.adagrad", 126000, 205, 30, 168};
    }

    BytesPerSec modelThroughput() const override { return GBps(7.9); }

  private:
    optim::Hyperparams hp_;
};

} // namespace

std::unique_ptr<UpdaterModule>
makeUpdater(optim::OptimizerKind kind, const optim::Hyperparams &hp,
            const UpdaterGeometry &geometry)
{
    SI_REQUIRE(geometry.chunk_elems > 0, "chunk size must be positive");
    switch (kind) {
      case optim::OptimizerKind::Adam:
        return std::make_unique<AdamUpdater>(hp, geometry, false);
      case optim::OptimizerKind::AdamW:
        return std::make_unique<AdamUpdater>(hp, geometry, true);
      case optim::OptimizerKind::SgdMomentum:
        return std::make_unique<SgdUpdater>(hp, geometry);
      case optim::OptimizerKind::AdaGrad:
        return std::make_unique<AdaGradUpdater>(hp, geometry);
    }
    panic("unknown optimizer kind");
}

} // namespace smartinf::accel
