#include "accel/decompressor.h"

#include <algorithm>

#include "common/logging.h"

namespace smartinf::accel {

namespace {

class TopKDecompressor final : public DecompressorModule
{
  public:
    explicit TopKDecompressor(const DecompressorGeometry &geometry)
        : geometry_(geometry)
    {
        SI_REQUIRE(geometry.batch_pairs > 0, "batch size must be positive");
    }

    void
    decompressSubgroup(const compress::SparseGradient &sparse,
                       std::size_t subgroup_base, float *out,
                       std::size_t n) const override
    {
        // 1. Gradient buffer initialized with zero (Fig 7 step 1).
        std::fill(out, out + n, 0.0f);

        // 2.-4. Stream (index, value) pairs in batches of S, routing each
        // value that targets this subgroup's partition.
        const std::size_t total = sparse.indices.size();
        SI_ASSERT(total == sparse.values.size(), "ragged sparse gradient");
        for (std::size_t batch = 0; batch < total;
             batch += geometry_.batch_pairs) {
            const std::size_t end =
                std::min(batch + geometry_.batch_pairs, total);
            for (std::size_t j = batch; j < end; ++j) {
                const std::size_t idx = sparse.indices[j];
                if (idx < subgroup_base || idx >= subgroup_base + n)
                    continue; // Owned by another subgroup/CSD.
                out[idx - subgroup_base] = sparse.values[j];
            }
        }
    }

    ModuleFootprint
    footprint() const override
    {
        // Table III: adding Top-K on top of Adam moves LUTs 33.66% -> 34.12%
        // and URAMs 34.38% -> 35.94% on the KU15P; no extra BRAM/DSP (pure
        // routing, no arithmetic).
        return ModuleFootprint{"decompressor.topk", 2404, 0, 2, 0};
    }

    BytesPerSec
    modelThroughput() const override
    {
        // Fig 14: decompressor slightly surpasses SSD read (~3.2 GB/s).
        return GBps(3.6);
    }

  private:
    DecompressorGeometry geometry_;
};

} // namespace

std::unique_ptr<DecompressorModule>
makeTopKDecompressor(const DecompressorGeometry &geometry)
{
    return std::make_unique<TopKDecompressor>(geometry);
}

} // namespace smartinf::accel
