/**
 * @file
 * FPGA resource budget accounting for the SmartSSD's Kintex UltraScale+
 * KU15P. Modules report a footprint (LUT/BRAM/URAM/DSP); the model checks
 * fit and renders the utilization table (paper Table III).
 */
#ifndef SMARTINF_ACCEL_FPGA_RESOURCES_H
#define SMARTINF_ACCEL_FPGA_RESOURCES_H

#include <cstdint>
#include <string>
#include <vector>

namespace smartinf::accel {

/** Resource consumption of one synthesized module. */
struct ModuleFootprint {
    std::string name;
    uint64_t luts = 0;
    uint64_t brams = 0;
    uint64_t urams = 0;
    uint64_t dsps = 0;

    ModuleFootprint &operator+=(const ModuleFootprint &other);
};

/** Device budget. */
struct FpgaBudget {
    uint64_t luts;
    uint64_t brams;
    uint64_t urams;
    uint64_t dsps;

    /** The SmartSSD's KU15P: ~522K LUTs, 984 BRAMs, 128 URAMs, 1968 DSPs. */
    static FpgaBudget ku15p();
};

/** Tracks placed modules against a budget. */
class FpgaResourceModel
{
  public:
    explicit FpgaResourceModel(FpgaBudget budget = FpgaBudget::ku15p())
        : budget_(budget)
    {
    }

    /** Place a module; fatal() when the device no longer fits. */
    void place(const ModuleFootprint &module);

    /** Remove all placed modules. */
    void clear();

    /** Aggregate footprint of everything placed. */
    ModuleFootprint total() const;

    /** Fractional utilization in [0,1] per resource class. */
    double lutUtilization() const;
    double bramUtilization() const;
    double uramUtilization() const;
    double dspUtilization() const;

    const FpgaBudget &budget() const { return budget_; }
    const std::vector<ModuleFootprint> &placed() const { return placed_; }

  private:
    FpgaBudget budget_;
    std::vector<ModuleFootprint> placed_;
};

} // namespace smartinf::accel

#endif // SMARTINF_ACCEL_FPGA_RESOURCES_H
