/**
 * @file
 * An MLP classifier with *flattened* parameters and manual backprop. The
 * flat parameter/gradient layout is the point: storage-offloaded training
 * (and Smart-Infinity's workload distribution, paper §IV-D) operates on the
 * flattened parameter vector, agnostic to architecture — this model plugs
 * directly into that pipeline.
 */
#ifndef SMARTINF_NN_MLP_H
#define SMARTINF_NN_MLP_H

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "nn/tensor.h"

namespace smartinf::nn {

/** Activation choice for hidden layers. */
enum class Activation { ReLU, GELU };

/** A feed-forward classifier over a flat parameter vector. */
class Mlp
{
  public:
    /**
     * @param layer_dims sizes [input, hidden..., classes]
     * @param activation hidden activation
     * @param seed initialization seed (Kaiming-style scaled normal)
     */
    Mlp(std::vector<std::size_t> layer_dims, Activation activation,
        uint64_t seed);

    /** Total parameter count (weights + biases, flattened). */
    std::size_t paramCount() const { return params_.size(); }

    float *params() { return params_.data(); }
    const float *params() const { return params_.data(); }

    /** Overwrite all parameters (e.g., from the offloaded master copy). */
    void setParams(const float *values, std::size_t n);

    /**
     * Forward + backward over a batch. Accumulates nothing: @p grad_out is
     * fully overwritten with d(mean loss)/d(params), same flat layout as
     * params(). @return mean loss.
     */
    float lossAndGradient(const Matrix &inputs, const std::vector<int> &labels,
                          float *grad_out);

    /** Inference: class predictions for a batch. */
    std::vector<int> predict(const Matrix &inputs);

    /** Classification accuracy over a labelled set. */
    double accuracy(const Matrix &inputs, const std::vector<int> &labels);

    const std::vector<std::size_t> &layerDims() const { return dims_; }

  private:
    /** Weight/bias offsets of layer l within the flat vector. */
    std::size_t weightOffset(std::size_t l) const { return w_offsets_[l]; }
    std::size_t biasOffset(std::size_t l) const { return b_offsets_[l]; }

    void forward(const Matrix &inputs, std::vector<Matrix> &pre,
                 std::vector<Matrix> &post);

    std::vector<std::size_t> dims_;
    Activation activation_;
    std::vector<float> params_;
    std::vector<std::size_t> w_offsets_;
    std::vector<std::size_t> b_offsets_;
};

} // namespace smartinf::nn

#endif // SMARTINF_NN_MLP_H
