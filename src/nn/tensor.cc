#include "nn/tensor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace smartinf::nn {

void
matmul(const Matrix &a, const Matrix &b, Matrix &out)
{
    SI_ASSERT(a.cols() == b.rows() && out.rows() == a.rows() &&
                  out.cols() == b.cols(),
              "matmul shape mismatch");
    out.fill(0.0f);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const float aik = a.at(i, k);
            if (aik == 0.0f)
                continue;
            for (std::size_t j = 0; j < b.cols(); ++j)
                out.at(i, j) += aik * b.at(k, j);
        }
    }
}

void
matmulTransA(const Matrix &a, const Matrix &b, Matrix &out)
{
    SI_ASSERT(a.rows() == b.rows() && out.rows() == a.cols() &&
                  out.cols() == b.cols(),
              "matmulTransA shape mismatch");
    out.fill(0.0f);
    for (std::size_t k = 0; k < a.rows(); ++k) {
        for (std::size_t i = 0; i < a.cols(); ++i) {
            const float aki = a.at(k, i);
            if (aki == 0.0f)
                continue;
            for (std::size_t j = 0; j < b.cols(); ++j)
                out.at(i, j) += aki * b.at(k, j);
        }
    }
}

void
matmulTransB(const Matrix &a, const Matrix &b, Matrix &out)
{
    SI_ASSERT(a.cols() == b.cols() && out.rows() == a.rows() &&
                  out.cols() == b.rows(),
              "matmulTransB shape mismatch");
    out.fill(0.0f);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < b.rows(); ++j) {
            float acc = 0.0f;
            for (std::size_t k = 0; k < a.cols(); ++k)
                acc += a.at(i, k) * b.at(j, k);
            out.at(i, j) = acc;
        }
    }
}

void
addBias(Matrix &m, const float *bias)
{
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j)
            m.at(i, j) += bias[j];
}

void
reluForward(Matrix &m, Matrix &mask)
{
    SI_ASSERT(mask.rows() == m.rows() && mask.cols() == m.cols(),
              "relu mask shape mismatch");
    for (std::size_t i = 0; i < m.size(); ++i) {
        const bool active = m.data()[i] > 0.0f;
        mask.data()[i] = active ? 1.0f : 0.0f;
        if (!active)
            m.data()[i] = 0.0f;
    }
}

void
reluBackward(Matrix &grad, const Matrix &mask)
{
    SI_ASSERT(grad.size() == mask.size(), "relu backward shape mismatch");
    for (std::size_t i = 0; i < grad.size(); ++i)
        grad.data()[i] *= mask.data()[i];
}

namespace {

constexpr float kGeluC = 0.7978845608028654f; // sqrt(2/pi)

float
geluScalar(float x)
{
    return 0.5f * x *
           (1.0f + std::tanh(kGeluC * (x + 0.044715f * x * x * x)));
}

float
geluGradScalar(float x)
{
    const float t = std::tanh(kGeluC * (x + 0.044715f * x * x * x));
    const float dt =
        (1.0f - t * t) * kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
    return 0.5f * (1.0f + t) + 0.5f * x * dt;
}

} // namespace

void
geluForward(const Matrix &pre, Matrix &out)
{
    SI_ASSERT(pre.size() == out.size(), "gelu shape mismatch");
    for (std::size_t i = 0; i < pre.size(); ++i)
        out.data()[i] = geluScalar(pre.data()[i]);
}

void
geluBackward(const Matrix &pre, const Matrix &grad_out, Matrix &grad_in)
{
    SI_ASSERT(pre.size() == grad_out.size() && pre.size() == grad_in.size(),
              "gelu backward shape mismatch");
    for (std::size_t i = 0; i < pre.size(); ++i)
        grad_in.data()[i] = grad_out.data()[i] * geluGradScalar(pre.data()[i]);
}

float
softmaxCrossEntropy(const Matrix &logits, const std::vector<int> &labels,
                    Matrix &grad)
{
    SI_ASSERT(labels.size() == logits.rows(), "label count mismatch");
    SI_ASSERT(grad.rows() == logits.rows() && grad.cols() == logits.cols(),
              "grad shape mismatch");
    const std::size_t batch = logits.rows();
    const std::size_t classes = logits.cols();
    double total_loss = 0.0;

    for (std::size_t i = 0; i < batch; ++i) {
        float max_logit = logits.at(i, 0);
        for (std::size_t c = 1; c < classes; ++c)
            max_logit = std::max(max_logit, logits.at(i, c));
        double denom = 0.0;
        for (std::size_t c = 0; c < classes; ++c)
            denom += std::exp(static_cast<double>(logits.at(i, c) - max_logit));
        const int label = labels[i];
        SI_ASSERT(label >= 0 && static_cast<std::size_t>(label) < classes,
                  "label out of range");
        for (std::size_t c = 0; c < classes; ++c) {
            const double p =
                std::exp(static_cast<double>(logits.at(i, c) - max_logit)) /
                denom;
            grad.at(i, c) = static_cast<float>(
                (p - (static_cast<std::size_t>(label) == c ? 1.0 : 0.0)) /
                batch);
            if (static_cast<std::size_t>(label) == c)
                total_loss += -std::log(std::max(p, 1e-12));
        }
    }
    return static_cast<float>(total_loss / batch);
}

std::vector<int>
argmaxRows(const Matrix &logits)
{
    std::vector<int> out(logits.rows());
    for (std::size_t i = 0; i < logits.rows(); ++i) {
        int best = 0;
        for (std::size_t c = 1; c < logits.cols(); ++c) {
            if (logits.at(i, c) > logits.at(i, best))
                best = static_cast<int>(c);
        }
        out[i] = best;
    }
    return out;
}

} // namespace smartinf::nn
