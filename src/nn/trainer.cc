#include "nn/trainer.h"

#include <algorithm>
#include <numeric>

#include "common/half.h"
#include "common/logging.h"
#include "common/random.h"

namespace smartinf::nn {

HostBackend::HostBackend(optim::OptimizerKind kind,
                         const optim::Hyperparams &hp)
    : optimizer_(optim::makeOptimizer(kind, hp))
{
}

void
HostBackend::initialize(const float *params, std::size_t n)
{
    master_.assign(params, params + n);
    states_.assign(optimizer_->stateCount(), std::vector<float>(n, 0.0f));
}

void
HostBackend::step(const float *grads, std::size_t n, uint64_t t)
{
    SI_REQUIRE(n == master_.size(), "gradient size mismatch");
    std::vector<float *> ptrs;
    for (auto &state : states_)
        ptrs.push_back(state.data());
    optimizer_->step(master_.data(), grads, ptrs.data(), n, t);
}

Trainer::Trainer(Mlp &model, UpdateBackend &backend, const Config &config)
    : model_(model), backend_(backend), config_(config)
{
    SI_REQUIRE(config.epochs >= 1, "need at least one epoch");
    SI_REQUIRE(config.batch_size >= 1, "need positive batch size");
}

TrainReport
Trainer::fit(const Dataset &dataset)
{
    backend_.initialize(model_.params(), model_.paramCount());

    const std::size_t n_params = model_.paramCount();
    const std::size_t n_train = dataset.train.labels.size();
    std::vector<float> grads(n_params, 0.0f);
    std::vector<half_t> grads_fp16(n_params, 0);
    std::vector<std::size_t> order(n_train);
    std::iota(order.begin(), order.end(), 0u);
    Rng rng(config_.shuffle_seed);

    TrainReport report;
    uint64_t step = 0;
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        // Fisher-Yates shuffle with the deterministic RNG.
        for (std::size_t i = n_train; i > 1; --i)
            std::swap(order[i - 1], order[rng.uniformInt(i)]);

        double epoch_loss = 0.0;
        std::size_t batches = 0;
        for (std::size_t start = 0; start < n_train;
             start += config_.batch_size) {
            const std::size_t len =
                std::min(config_.batch_size, n_train - start);
            Matrix batch(len, dataset.input_dim);
            std::vector<int> labels(len);
            for (std::size_t i = 0; i < len; ++i) {
                const std::size_t src = order[start + i];
                for (std::size_t d = 0; d < dataset.input_dim; ++d)
                    batch.at(i, d) = dataset.train.inputs.at(src, d);
                labels[i] = dataset.train.labels[src];
            }

            epoch_loss += model_.lossAndGradient(batch, labels, grads.data());
            ++batches;

            if (config_.fp16_gradients) {
                // Scale, quantize to FP16 (what the GPU would offload),
                // scan for overflow, unscale — the §IV-C constraint.
                const float scale = scaler_.scale();
                for (std::size_t i = 0; i < n_params; ++i)
                    grads[i] *= scale;
                floatToHalf(grads.data(), grads_fp16.data(), n_params);
                const bool overflow =
                    optim::LossScaler::hasOverflow(grads_fp16.data(), n_params);
                if (scaler_.update(overflow)) {
                    ++report.overflow_skips;
                    continue; // Skip the step, retry with a smaller scale.
                }
                halfToFloat(grads_fp16.data(), grads.data(), n_params);
                const float inv = 1.0f / scale;
                for (std::size_t i = 0; i < n_params; ++i)
                    grads[i] *= inv;
            }

            backend_.step(grads.data(), n_params, ++step);
            model_.setParams(backend_.masterParams(),
                             backend_.paramCount());
        }
        report.epoch_losses.push_back(
            static_cast<float>(epoch_loss / std::max<std::size_t>(1, batches)));
    }

    report.steps = step;
    report.dev_accuracy =
        model_.accuracy(dataset.dev.inputs, dataset.dev.labels);
    return report;
}

} // namespace smartinf::nn
