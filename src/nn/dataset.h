/**
 * @file
 * Synthetic classification tasks standing in for the paper's GLUE
 * fine-tuning datasets (Table IV: MNLI, QQP, SST-2, QNLI). Each task is a
 * deterministic generator with a train/dev split and a nonlinear decision
 * structure, so optimizer/compression differences show up as real accuracy
 * differences.
 */
#ifndef SMARTINF_NN_DATASET_H
#define SMARTINF_NN_DATASET_H

#include <cstdint>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace smartinf::nn {

/** A labelled split. */
struct Split {
    Matrix inputs;
    std::vector<int> labels;
};

/** A complete task: train + dev data. */
struct Dataset {
    std::string name;
    int num_classes = 2;
    std::size_t input_dim = 0;
    Split train;
    Split dev;
};

/** Identifier of the GLUE-analog tasks. */
enum class TaskId { MnliLike, QqpLike, Sst2Like, QnliLike };

const char *taskName(TaskId task);

/**
 * Build a task. Generators:
 *  - MnliLike: 3-class Gaussian mixtures with rotated covariance (entailment
 *    / neutral / contradiction analog).
 *  - QqpLike: pair similarity — inputs are concatenated vector pairs,
 *    label = whether they come from the same latent prototype.
 *  - Sst2Like: 2-class with a nonlinear (XOR-of-subspaces) boundary.
 *  - QnliLike: 2-class with class-dependent ring radii.
 */
Dataset makeTask(TaskId task, std::size_t train_size = 2048,
                 std::size_t dev_size = 512, std::size_t input_dim = 32,
                 uint64_t seed = 7);

/** All four tasks (Table IV's column set). */
std::vector<TaskId> allTasks();

} // namespace smartinf::nn

#endif // SMARTINF_NN_DATASET_H
