#include "nn/dataset.h"

#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace smartinf::nn {

const char *
taskName(TaskId task)
{
    switch (task) {
      case TaskId::MnliLike: return "MNLI-like";
      case TaskId::QqpLike: return "QQP-like";
      case TaskId::Sst2Like: return "SST-2-like";
      case TaskId::QnliLike: return "QNLI-like";
    }
    return "?";
}

std::vector<TaskId>
allTasks()
{
    return {TaskId::MnliLike, TaskId::QqpLike, TaskId::Sst2Like,
            TaskId::QnliLike};
}

namespace {

/** 3-class Gaussian mixture with per-class rotation. */
void
genMnli(Rng &rng, std::size_t dim, Matrix &x, std::vector<int> &y,
        std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        const int label = static_cast<int>(rng.uniformInt(3));
        y[i] = label;
        for (std::size_t d = 0; d < dim; ++d) {
            const double center =
                2.2 * std::sin(1.7 * label + 0.37 * static_cast<double>(d));
            x.at(i, d) = static_cast<float>(rng.normal(center, 1.0));
        }
    }
}

/** Pair-similarity: halves either share a prototype or not. */
void
genQqp(Rng &rng, std::size_t dim, Matrix &x, std::vector<int> &y,
       std::size_t count)
{
    const std::size_t half = dim / 2;
    const int prototypes = 6;
    for (std::size_t i = 0; i < count; ++i) {
        const int match = static_cast<int>(rng.uniformInt(2));
        y[i] = match;
        const int p1 = static_cast<int>(rng.uniformInt(prototypes));
        const int p2 =
            match ? p1
                  : static_cast<int>((p1 + 1 + rng.uniformInt(prototypes - 1)) %
                                     prototypes);
        for (std::size_t d = 0; d < half; ++d) {
            const double c1 = 1.8 * std::cos(0.9 * p1 + 0.53 * d);
            const double c2 = 1.8 * std::cos(0.9 * p2 + 0.53 * d);
            x.at(i, d) = static_cast<float>(rng.normal(c1, 0.8));
            x.at(i, half + d) = static_cast<float>(rng.normal(c2, 0.8));
        }
    }
}

/** XOR of two subspace sign-products: a genuinely nonlinear boundary. */
void
genSst2(Rng &rng, std::size_t dim, Matrix &x, std::vector<int> &y,
        std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        double s1 = 0.0, s2 = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
            const double v = rng.normal(0.0, 1.0);
            x.at(i, d) = static_cast<float>(v);
            if (d < dim / 2)
                s1 += v;
            else
                s2 += v;
        }
        y[i] = ((s1 > 0.0) != (s2 > 0.0)) ? 1 : 0;
    }
}

/** Class-dependent ring radii (annulus vs. core). */
void
genQnli(Rng &rng, std::size_t dim, Matrix &x, std::vector<int> &y,
        std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        const int label = static_cast<int>(rng.uniformInt(2));
        y[i] = label;
        double norm2 = 0.0;
        std::vector<double> raw(dim);
        for (std::size_t d = 0; d < dim; ++d) {
            raw[d] = rng.normal(0.0, 1.0);
            norm2 += raw[d] * raw[d];
        }
        const double norm = std::sqrt(norm2) + 1e-9;
        const double radius = (label == 0 ? 1.0 : 2.4) + rng.normal(0.0, 0.25);
        for (std::size_t d = 0; d < dim; ++d)
            x.at(i, d) = static_cast<float>(raw[d] / norm * radius);
    }
}

Split
genSplit(TaskId task, Rng &rng, std::size_t dim, std::size_t count)
{
    Split split;
    split.inputs = Matrix(count, dim);
    split.labels.assign(count, 0);
    switch (task) {
      case TaskId::MnliLike:
        genMnli(rng, dim, split.inputs, split.labels, count);
        break;
      case TaskId::QqpLike:
        genQqp(rng, dim, split.inputs, split.labels, count);
        break;
      case TaskId::Sst2Like:
        genSst2(rng, dim, split.inputs, split.labels, count);
        break;
      case TaskId::QnliLike:
        genQnli(rng, dim, split.inputs, split.labels, count);
        break;
    }
    return split;
}

} // namespace

Dataset
makeTask(TaskId task, std::size_t train_size, std::size_t dev_size,
         std::size_t input_dim, uint64_t seed)
{
    SI_REQUIRE(input_dim >= 4 && input_dim % 2 == 0,
               "input_dim must be even and >= 4");
    Dataset ds;
    ds.name = taskName(task);
    ds.num_classes = (task == TaskId::MnliLike) ? 3 : 2;
    ds.input_dim = input_dim;
    Rng rng(seed ^ (static_cast<uint64_t>(task) << 32));
    ds.train = genSplit(task, rng, input_dim, train_size);
    ds.dev = genSplit(task, rng, input_dim, dev_size);
    return ds;
}

} // namespace smartinf::nn
