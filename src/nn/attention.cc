#include "nn/attention.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/random.h"

namespace smartinf::nn {

TinyAttention::TinyAttention(std::size_t seq_len, std::size_t token_dim,
                             std::size_t num_classes, uint64_t seed)
    : seq_len_(seq_len), d_(token_dim), classes_(num_classes)
{
    SI_REQUIRE(seq_len >= 1 && token_dim >= 1 && num_classes >= 2,
               "invalid attention shape");
    params_.assign(3 * d_ * d_ + d_ * classes_ + classes_, 0.0f);
    Rng rng(seed);
    const double scale = 1.0 / std::sqrt(static_cast<double>(d_));
    for (std::size_t i = 0; i < 3 * d_ * d_ + d_ * classes_; ++i)
        params_[i] = static_cast<float>(rng.normal(0.0, scale));
    // Bias stays zero.
}

void
TinyAttention::setParams(const float *values, std::size_t n)
{
    SI_REQUIRE(n == params_.size(), "parameter count mismatch");
    std::memcpy(params_.data(), values, n * sizeof(float));
}

namespace {

/** proj = x (L x d) * w (d x m), with w taken from a flat pointer. */
void
project(const Matrix &x, const float *w, std::size_t m, Matrix &proj)
{
    const std::size_t rows = x.rows(), d = x.cols();
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < m; ++c) {
            float acc = 0.0f;
            for (std::size_t i = 0; i < d; ++i)
                acc += x.at(r, i) * w[i * m + c];
            proj.at(r, c) = acc;
        }
    }
}

} // namespace

void
TinyAttention::forwardSample(const float *flat_input, Cache &cache,
                             float *logits) const
{
    const std::size_t L = seq_len_, d = d_;
    cache.x = Matrix(L, d);
    std::memcpy(cache.x.data(), flat_input, L * d * sizeof(float));

    cache.q = Matrix(L, d);
    cache.k = Matrix(L, d);
    cache.v = Matrix(L, d);
    project(cache.x, params_.data() + wq(), d, cache.q);
    project(cache.x, params_.data() + wk(), d, cache.k);
    project(cache.x, params_.data() + wv(), d, cache.v);

    // Scaled dot-product attention with row-wise softmax.
    const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));
    cache.attn = Matrix(L, L);
    for (std::size_t i = 0; i < L; ++i) {
        float max_s = -1e30f;
        std::vector<float> scores(L);
        for (std::size_t j = 0; j < L; ++j) {
            float s = 0.0f;
            for (std::size_t c = 0; c < d; ++c)
                s += cache.q.at(i, c) * cache.k.at(j, c);
            scores[j] = s * inv_sqrt_d;
            max_s = std::max(max_s, scores[j]);
        }
        float denom = 0.0f;
        for (std::size_t j = 0; j < L; ++j) {
            scores[j] = std::exp(scores[j] - max_s);
            denom += scores[j];
        }
        for (std::size_t j = 0; j < L; ++j)
            cache.attn.at(i, j) = scores[j] / denom;
    }

    // H = A V; CLS-style readout: the first token's attention output
    // (mean pooling cancels per-channel signals on periodic features).
    cache.h = Matrix(L, d);
    matmul(cache.attn, cache.v, cache.h);
    cache.pooled.assign(d, 0.0f);
    for (std::size_t c = 0; c < d; ++c)
        cache.pooled[c] = cache.h.at(0, c);

    // logits = pooled Wc + b.
    const float *w = params_.data() + wc();
    const float *b = params_.data() + bias();
    for (std::size_t c = 0; c < classes_; ++c) {
        float acc = b[c];
        for (std::size_t i = 0; i < d; ++i)
            acc += cache.pooled[i] * w[i * classes_ + c];
        logits[c] = acc;
    }
}

float
TinyAttention::lossAndGradient(const Matrix &inputs,
                               const std::vector<int> &labels,
                               float *grad_out)
{
    const std::size_t batch = inputs.rows();
    SI_REQUIRE(inputs.cols() == seq_len_ * d_, "input size mismatch");
    SI_REQUIRE(labels.size() == batch, "label count mismatch");
    std::memset(grad_out, 0, params_.size() * sizeof(float));

    const std::size_t L = seq_len_, d = d_;
    const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));
    double total_loss = 0.0;
    Cache cache;
    std::vector<float> logits(classes_), dlogits(classes_);

    for (std::size_t s = 0; s < batch; ++s) {
        forwardSample(inputs.data() + s * inputs.cols(), cache,
                      logits.data());

        // Softmax cross-entropy on the logits.
        float max_logit = logits[0];
        for (std::size_t c = 1; c < classes_; ++c)
            max_logit = std::max(max_logit, logits[c]);
        double denom = 0.0;
        for (std::size_t c = 0; c < classes_; ++c)
            denom += std::exp(static_cast<double>(logits[c] - max_logit));
        const int label = labels[s];
        for (std::size_t c = 0; c < classes_; ++c) {
            const double p =
                std::exp(static_cast<double>(logits[c] - max_logit)) / denom;
            dlogits[c] = static_cast<float>(
                (p - (static_cast<std::size_t>(label) == c ? 1.0 : 0.0)) /
                batch);
            if (static_cast<std::size_t>(label) == c)
                total_loss += -std::log(std::max(p, 1e-12)) / batch;
        }

        // Classifier grads: dWc = pooled^T dlogits, db = dlogits.
        float *g_wc = grad_out + wc();
        float *g_b = grad_out + bias();
        std::vector<float> d_pooled(d, 0.0f);
        const float *w_c = params_.data() + wc();
        for (std::size_t i = 0; i < d; ++i) {
            for (std::size_t c = 0; c < classes_; ++c) {
                g_wc[i * classes_ + c] += cache.pooled[i] * dlogits[c];
                d_pooled[i] += w_c[i * classes_ + c] * dlogits[c];
            }
        }
        for (std::size_t c = 0; c < classes_; ++c)
            g_b[c] += dlogits[c];

        // Through the CLS readout: only row 0 of H receives gradient.
        Matrix dh(L, d);
        for (std::size_t c = 0; c < d; ++c)
            dh.at(0, c) = d_pooled[c];

        // dA = dH V^T, dV = A^T dH.
        Matrix da(L, L), dv(L, d);
        matmulTransB(dh, cache.v, da);
        matmulTransA(cache.attn, dh, dv);

        // Softmax backward (per attention row) and the 1/sqrt(d) scale.
        Matrix ds(L, L);
        for (std::size_t i = 0; i < L; ++i) {
            float dot = 0.0f;
            for (std::size_t j = 0; j < L; ++j)
                dot += da.at(i, j) * cache.attn.at(i, j);
            for (std::size_t j = 0; j < L; ++j)
                ds.at(i, j) = cache.attn.at(i, j) * (da.at(i, j) - dot) *
                              inv_sqrt_d;
        }

        // dQ = dS K; dK = dS^T Q.
        Matrix dq(L, d), dk(L, d);
        matmul(ds, cache.k, dq);
        matmulTransA(ds, cache.q, dk);

        // Projection weight grads: dW* = X^T d*.
        auto accumulate = [&](const Matrix &dproj, float *g_w) {
            for (std::size_t i = 0; i < d; ++i)
                for (std::size_t c = 0; c < d; ++c) {
                    float acc = 0.0f;
                    for (std::size_t r = 0; r < L; ++r)
                        acc += cache.x.at(r, i) * dproj.at(r, c);
                    g_w[i * d + c] += acc;
                }
        };
        accumulate(dq, grad_out + wq());
        accumulate(dk, grad_out + wk());
        accumulate(dv, grad_out + wv());
    }
    return static_cast<float>(total_loss);
}

std::vector<int>
TinyAttention::predict(const Matrix &inputs)
{
    std::vector<int> out(inputs.rows());
    Cache cache;
    std::vector<float> logits(classes_);
    for (std::size_t s = 0; s < inputs.rows(); ++s) {
        forwardSample(inputs.data() + s * inputs.cols(), cache,
                      logits.data());
        int best = 0;
        for (std::size_t c = 1; c < classes_; ++c)
            if (logits[c] > logits[best])
                best = static_cast<int>(c);
        out[s] = best;
    }
    return out;
}

double
TinyAttention::accuracy(const Matrix &inputs, const std::vector<int> &labels)
{
    const auto preds = predict(inputs);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < preds.size(); ++i)
        correct += (preds[i] == labels[i]) ? 1 : 0;
    return preds.empty() ? 0.0
                         : static_cast<double>(correct) / preds.size();
}

} // namespace smartinf::nn
