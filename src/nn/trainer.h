/**
 * @file
 * Training loop decoupled from *where* the optimizer step runs. The
 * UpdateBackend abstraction is the seam Smart-Infinity plugs into: the host
 * backend is the ZeRO-Infinity-style CPU update; the CSD backend (core/)
 * runs the same step through the FPGA updater pipeline, optionally with
 * Top-K-compressed gradients (SmartComp); the data-parallel backend
 * (dist::DataParallelCluster) reduces gradients across replicated CSD
 * clusters before the near-storage step. Table IV's accuracy rows are
 * produced by swapping backends under an otherwise identical loop.
 */
#ifndef SMARTINF_NN_TRAINER_H
#define SMARTINF_NN_TRAINER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/dataset.h"
#include "nn/mlp.h"
#include "optim/loss_scaler.h"
#include "optim/optimizer.h"

namespace smartinf::nn {

/** Applies optimizer steps to a flat parameter vector it owns. */
class UpdateBackend
{
  public:
    virtual ~UpdateBackend() = default;

    /** Load the initial FP32 master parameters. */
    virtual void initialize(const float *params, std::size_t n) = 0;

    /** Apply one optimizer step with dense FP32 gradients. */
    virtual void step(const float *grads, std::size_t n, uint64_t t) = 0;

    /** Current FP32 master parameters (after the latest step). */
    virtual const float *masterParams() const = 0;
    virtual std::size_t paramCount() const = 0;

    virtual const char *backendName() const = 0;
};

/** Reference backend: the baseline's host-CPU update. */
class HostBackend final : public UpdateBackend
{
  public:
    HostBackend(optim::OptimizerKind kind, const optim::Hyperparams &hp);

    void initialize(const float *params, std::size_t n) override;
    void step(const float *grads, std::size_t n, uint64_t t) override;
    const float *masterParams() const override { return master_.data(); }
    std::size_t paramCount() const override { return master_.size(); }
    const char *backendName() const override { return "host-cpu"; }

  private:
    std::unique_ptr<optim::Optimizer> optimizer_;
    std::vector<float> master_;
    std::vector<std::vector<float>> states_;
};

/** Result of one training run. */
struct TrainReport {
    std::vector<float> epoch_losses;
    double dev_accuracy = 0.0;
    uint64_t steps = 0;
    uint64_t overflow_skips = 0;
};

/** Mini-batch trainer with mixed-precision gradient emulation. */
class Trainer
{
  public:
    struct Config {
        int epochs = 3;
        std::size_t batch_size = 32;
        uint64_t shuffle_seed = 17;
        /**
         * Round-trip gradients through FP16 with dynamic loss scaling, as
         * mixed-precision training does — exercising the overflow-scan
         * constraint the paper discusses (§IV-C).
         */
        bool fp16_gradients = true;
    };

    Trainer(Mlp &model, UpdateBackend &backend, const Config &config);

    /** Train on @p dataset; returns losses and final dev accuracy. */
    TrainReport fit(const Dataset &dataset);

  private:
    Mlp &model_;
    UpdateBackend &backend_;
    Config config_;
    optim::LossScaler scaler_;
};

} // namespace smartinf::nn

#endif // SMARTINF_NN_TRAINER_H
