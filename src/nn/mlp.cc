#include "nn/mlp.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace smartinf::nn {

Mlp::Mlp(std::vector<std::size_t> layer_dims, Activation activation,
         uint64_t seed)
    : dims_(std::move(layer_dims)), activation_(activation)
{
    SI_REQUIRE(dims_.size() >= 2, "MLP needs at least input and output dims");
    std::size_t total = 0;
    for (std::size_t l = 0; l + 1 < dims_.size(); ++l) {
        w_offsets_.push_back(total);
        total += dims_[l] * dims_[l + 1];
        b_offsets_.push_back(total);
        total += dims_[l + 1];
    }
    params_.assign(total, 0.0f);

    Rng rng(seed);
    for (std::size_t l = 0; l + 1 < dims_.size(); ++l) {
        const double scale = std::sqrt(2.0 / static_cast<double>(dims_[l]));
        float *w = params_.data() + w_offsets_[l];
        for (std::size_t i = 0; i < dims_[l] * dims_[l + 1]; ++i)
            w[i] = static_cast<float>(rng.normal(0.0, scale));
        // Biases start at zero.
    }
}

void
Mlp::setParams(const float *values, std::size_t n)
{
    SI_REQUIRE(n == params_.size(), "parameter count mismatch: ", n, " vs ",
               params_.size());
    std::memcpy(params_.data(), values, n * sizeof(float));
}

void
Mlp::forward(const Matrix &inputs, std::vector<Matrix> &pre,
             std::vector<Matrix> &post)
{
    const std::size_t layers = dims_.size() - 1;
    const std::size_t batch = inputs.rows();
    SI_REQUIRE(inputs.cols() == dims_[0], "input dim mismatch");

    pre.clear();
    post.clear();
    post.reserve(layers + 1);
    post.push_back(inputs); // post[0] = network input.

    for (std::size_t l = 0; l < layers; ++l) {
        Matrix weight_view(dims_[l], dims_[l + 1]);
        std::memcpy(weight_view.data(), params_.data() + w_offsets_[l],
                    weight_view.size() * sizeof(float));
        Matrix z(batch, dims_[l + 1]);
        matmul(post.back(), weight_view, z);
        addBias(z, params_.data() + b_offsets_[l]);
        pre.push_back(z);

        if (l + 1 == layers) {
            post.push_back(z); // Logits: no activation.
        } else if (activation_ == Activation::ReLU) {
            Matrix mask(batch, dims_[l + 1]);
            Matrix activated = z;
            reluForward(activated, mask);
            post.push_back(std::move(activated));
        } else {
            Matrix activated(batch, dims_[l + 1]);
            geluForward(z, activated);
            post.push_back(std::move(activated));
        }
    }
}

float
Mlp::lossAndGradient(const Matrix &inputs, const std::vector<int> &labels,
                     float *grad_out)
{
    const std::size_t layers = dims_.size() - 1;
    const std::size_t batch = inputs.rows();

    std::vector<Matrix> pre, post;
    forward(inputs, pre, post);

    Matrix delta(batch, dims_.back());
    const float loss = softmaxCrossEntropy(post.back(), labels, delta);

    std::memset(grad_out, 0, params_.size() * sizeof(float));
    for (std::size_t l = layers; l-- > 0;) {
        // dW = post[l]^T * delta; db = column sums of delta.
        Matrix dw(dims_[l], dims_[l + 1]);
        matmulTransA(post[l], delta, dw);
        std::memcpy(grad_out + w_offsets_[l], dw.data(),
                    dw.size() * sizeof(float));
        float *db = grad_out + b_offsets_[l];
        for (std::size_t i = 0; i < batch; ++i)
            for (std::size_t j = 0; j < dims_[l + 1]; ++j)
                db[j] += delta.at(i, j);

        if (l == 0)
            break;

        // delta_prev = delta * W^T, through the activation derivative.
        Matrix weight_view(dims_[l], dims_[l + 1]);
        std::memcpy(weight_view.data(), params_.data() + w_offsets_[l],
                    weight_view.size() * sizeof(float));
        Matrix delta_prev(batch, dims_[l]);
        matmulTransB(delta, weight_view, delta_prev);

        if (activation_ == Activation::ReLU) {
            Matrix mask(batch, dims_[l]);
            Matrix activated = pre[l - 1];
            reluForward(activated, mask); // Recompute the mask.
            reluBackward(delta_prev, mask);
            delta = std::move(delta_prev);
        } else {
            Matrix delta_in(batch, dims_[l]);
            geluBackward(pre[l - 1], delta_prev, delta_in);
            delta = std::move(delta_in);
        }
    }
    return loss;
}

std::vector<int>
Mlp::predict(const Matrix &inputs)
{
    std::vector<Matrix> pre, post;
    forward(inputs, pre, post);
    return argmaxRows(post.back());
}

double
Mlp::accuracy(const Matrix &inputs, const std::vector<int> &labels)
{
    const auto preds = predict(inputs);
    SI_ASSERT(preds.size() == labels.size(), "label count mismatch");
    std::size_t correct = 0;
    for (std::size_t i = 0; i < preds.size(); ++i)
        correct += (preds[i] == labels[i]) ? 1 : 0;
    return preds.empty() ? 0.0
                         : static_cast<double>(correct) / preds.size();
}

} // namespace smartinf::nn
