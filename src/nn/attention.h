/**
 * @file
 * A single-head self-attention sequence classifier with flat parameters and
 * manual backprop — the transformer-shaped counterpart of nn::Mlp, bringing
 * the accuracy experiments closer to the paper's BERT/GPT fine-tuning
 * workloads. Inputs are flat vectors reinterpreted as (seq_len x token_dim)
 * matrices; the head is attention -> mean pooling -> linear classifier.
 */
#ifndef SMARTINF_NN_ATTENTION_H
#define SMARTINF_NN_ATTENTION_H

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace smartinf::nn {

/** Single-head attention classifier over flattened sequence inputs. */
class TinyAttention
{
  public:
    /**
     * @param seq_len tokens per sample (input vectors are seq_len*token_dim)
     * @param token_dim per-token feature width
     * @param num_classes output classes
     * @param seed deterministic initialization
     */
    TinyAttention(std::size_t seq_len, std::size_t token_dim,
                  std::size_t num_classes, uint64_t seed);

    std::size_t paramCount() const { return params_.size(); }
    float *params() { return params_.data(); }
    const float *params() const { return params_.data(); }
    void setParams(const float *values, std::size_t n);

    /** Forward + backward; grad_out is overwritten (flat layout). */
    float lossAndGradient(const Matrix &inputs, const std::vector<int> &labels,
                          float *grad_out);

    std::vector<int> predict(const Matrix &inputs);
    double accuracy(const Matrix &inputs, const std::vector<int> &labels);

    std::size_t seqLen() const { return seq_len_; }
    std::size_t tokenDim() const { return d_; }

  private:
    /** Flat-parameter offsets: Wq, Wk, Wv (d x d), Wc (d x C), b (C). */
    std::size_t wq() const { return 0; }
    std::size_t wk() const { return d_ * d_; }
    std::size_t wv() const { return 2 * d_ * d_; }
    std::size_t wc() const { return 3 * d_ * d_; }
    std::size_t bias() const { return 3 * d_ * d_ + d_ * classes_; }

    /** Per-sample forward; caches intermediates for backward. */
    struct Cache {
        Matrix x, q, k, v, attn, h;
        std::vector<float> pooled;
    };
    void forwardSample(const float *flat_input, Cache &cache,
                       float *logits) const;

    std::size_t seq_len_, d_, classes_;
    std::vector<float> params_;
};

} // namespace smartinf::nn

#endif // SMARTINF_NN_ATTENTION_H
