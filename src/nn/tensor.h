/**
 * @file
 * Minimal dense-math substrate for the functional training experiments:
 * row-major matrices with the handful of kernels an MLP classifier needs
 * (GEMM, bias, activations, softmax cross-entropy). Deliberately simple —
 * the accuracy experiments need *real* training, not fast training.
 */
#ifndef SMARTINF_NN_TENSOR_H
#define SMARTINF_NN_TENSOR_H

#include <cstddef>
#include <vector>

namespace smartinf::nn {

/** A row-major matrix of floats. */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
    {
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    float &at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    float at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    void fill(float value) { std::fill(data_.begin(), data_.end(), value); }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/** out = a (m x k) * b (k x n). out must be m x n. */
void matmul(const Matrix &a, const Matrix &b, Matrix &out);
/** out = a^T (k x m)^T... i.e. out(m x n) = a(k x m)^T * b(k x n). */
void matmulTransA(const Matrix &a, const Matrix &b, Matrix &out);
/** out(m x k) = a(m x n) * b(k x n)^T. */
void matmulTransB(const Matrix &a, const Matrix &b, Matrix &out);

/** Add row-vector bias to every row in place. */
void addBias(Matrix &m, const float *bias);

/** ReLU forward in place; mask receives 1/0 activation pattern. */
void reluForward(Matrix &m, Matrix &mask);
/** ReLU backward: grad *= mask, in place. */
void reluBackward(Matrix &grad, const Matrix &mask);

/** tanh-approximated GELU forward in place (stores pre-activation). */
void geluForward(const Matrix &pre, Matrix &out);
/** GELU backward: grad_in = grad_out * gelu'(pre). */
void geluBackward(const Matrix &pre, const Matrix &grad_out, Matrix &grad_in);

/**
 * Softmax + cross-entropy. logits: batch x classes; labels: batch ints.
 * Writes d(loss)/d(logits) into grad (averaged over the batch) and returns
 * the mean loss.
 */
float softmaxCrossEntropy(const Matrix &logits,
                          const std::vector<int> &labels, Matrix &grad);

/** Argmax per row (predictions). */
std::vector<int> argmaxRows(const Matrix &logits);

} // namespace smartinf::nn

#endif // SMARTINF_NN_TENSOR_H
