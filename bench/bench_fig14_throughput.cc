/**
 * @file
 * Fig 14: computational throughput of the updater and decompressor modules
 * compared to NVMe SSD read/write bandwidth. The modeled device rates come
 * from the module perf analyzers; the google-benchmark section additionally
 * measures the *behavioral emulation* throughput of the same kernels on the
 * host (real element processing, used by the sanity checkers).
 */
#include <benchmark/benchmark.h>

#include <vector>

#include "accel/decompressor.h"
#include "accel/hls_module.h"
#include "accel/updater.h"
#include "bench_util.h"
#include "common/random.h"
#include "storage/block_device.h"

using namespace smartinf;

namespace {

void
printModeledTable()
{
    Table table("Fig 14: modeled module throughput vs SSD (GB/s)");
    table.setHeader({"size", "updater", "decomp+update path", "SSD read",
                     "SSD write"});
    const auto ssd = storage::SsdSpec::smartSsdNvme();
    auto updater =
        accel::makeUpdater(optim::OptimizerKind::Adam, optim::Hyperparams{});
    auto decomp = accel::makeTopKDecompressor();
    for (double billions : {0.34, 1.7, 4.0, 8.4}) {
        table.addRow({Table::num(billions, 2) + "B",
                      Table::num(updater->modelThroughput() / 1e9, 2),
                      Table::num(decomp->modelThroughput() / 1e9, 2),
                      Table::num(ssd.read_bandwidth / 1e9, 2),
                      Table::num(ssd.write_bandwidth / 1e9, 2)});
    }
    table.print(std::cout);
    std::cout << "paper anchors (Fig 14): updater > 7 GB/s; decompressor "
                 "slightly above SSD read (~3.2 GB/s); write well below "
                 "read.\n\n";
}

void
BM_UpdaterEmulation(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    auto updater =
        accel::makeUpdater(optim::OptimizerKind::Adam, optim::Hyperparams{});
    Rng rng(1);
    std::vector<float> master(n), grad(n), mmt(n, 0.0f), var(n, 0.0f);
    for (auto &g : grad)
        g = static_cast<float>(rng.normal(0.0, 0.01));
    float *states[] = {mmt.data(), var.data()};
    uint64_t t = 0;
    for (auto _ : state) {
        updater->processSubgroup(master.data(), grad.data(), states, n, ++t);
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n *
                            16); // state-stream bytes
}
BENCHMARK(BM_UpdaterEmulation)->Arg(1 << 14)->Arg(1 << 18);

void
BM_DecompressorEmulation(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    auto decomp = accel::makeTopKDecompressor();
    Rng rng(2);
    std::vector<float> dense(n), out(n);
    for (auto &g : dense)
        g = static_cast<float>(rng.normal());
    compress::TopKCompressor comp(0.01);
    const auto sparse = comp.compress(dense.data(), n);
    for (auto _ : state) {
        decomp->decompressSubgroup(sparse, 0, out.data(), n);
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n *
                            4); // dense output bytes
}
BENCHMARK(BM_DecompressorEmulation)->Arg(1 << 14)->Arg(1 << 18);

void
BM_TopKCompressionGpuSide(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(3);
    std::vector<float> dense(n);
    for (auto &g : dense)
        g = static_cast<float>(rng.normal());
    compress::TopKCompressor comp(0.01);
    for (auto _ : state) {
        auto sparse = comp.compress(dense.data(), n);
        benchmark::DoNotOptimize(sparse.wireBytes());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n * 4);
}
BENCHMARK(BM_TopKCompressionGpuSide)->Arg(1 << 14)->Arg(1 << 18);

} // namespace

int
main(int argc, char **argv)
{
    printModeledTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
