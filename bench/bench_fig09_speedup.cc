/**
 * @file
 * Fig 9: training-time breakdown and speedup of BASE / SU / SU+O / SU+O+C
 * for GPT-2 (4.0B, 8.4B) and BERT (4.0B, 8.3B) with 6 and 10 SSDs.
 */
#include "bench_util.h"

using namespace smartinf;
using namespace smartinf::bench;

namespace {

void
runModel(const train::ModelSpec &model)
{
    for (int n : {6, 10}) {
        Table table("Fig 9: " + model.name + ", #SSDs = " +
                    std::to_string(n));
        breakdownHeader(table);
        const auto base = runIteration(model, train::Strategy::Baseline, n);
        addBreakdownRow(table, "BASE", base, 1.0);
        const train::Strategy strategies[] = {
            train::Strategy::SmartUpdate, train::Strategy::SmartUpdateOpt,
            train::Strategy::SmartUpdateOptComp};
        for (auto strategy : strategies) {
            const auto r = runIteration(model, strategy, n);
            addBreakdownRow(table, train::strategyName(strategy), r,
                            base.iteration_time / r.iteration_time);
        }
        table.print(std::cout);
    }
}

} // namespace

int
main()
{
    runModel(train::ModelSpec::gpt2(4.0));
    runModel(train::ModelSpec::gpt2(8.4));
    runModel(train::ModelSpec::bert(4.0));
    runModel(train::ModelSpec::bert(8.3));
    std::cout << "paper anchors (Fig 9): SU 1.18-1.24x @6, 1.54-1.60x @10; "
                 "SU+O up to 1.60-1.66x @10; SU+O+C 1.85-1.98x @10. "
                 "Speedup trends are near-identical across models.\n";
    return 0;
}
