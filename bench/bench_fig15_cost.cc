/**
 * @file
 * Fig 15: system cost efficiency (GFLOPS/$) of the baseline vs
 * Smart-Infinity for 1-10 devices, on the A5000 and A100 setups. SmartSSDs
 * cost ~6x a plain SSD, so Smart-Infinity only wins beyond ~4 devices.
 */
#include "bench_util.h"
#include "train/cost_model.h"

using namespace smartinf;
using namespace smartinf::bench;

int
main()
{
    const auto model = train::ModelSpec::gpt2(4.0);
    train::TrainConfig tc;
    for (auto gpu : {train::GpuGrade::A5000, train::GpuGrade::A100_40GB}) {
        Table table(std::string("Fig 15: GFLOPS/$, GPU = ") +
                    train::gpuName(gpu));
        table.setHeader({"#SSDs", "ZeRO-Inf", "Smart-Inf (SU+O+C)",
                         "winner"});
        for (int n : {1, 2, 4, 6, 8, 10}) {
            train::SystemConfig base_cfg;
            base_cfg.num_devices = n;
            base_cfg.gpu = gpu;
            const auto base_r =
                train::makeEngine(model, tc, base_cfg)->runIteration();
            const double base_g =
                train::gflopsPerDollar(model, tc, base_cfg, base_r);

            train::SystemConfig smart_cfg = base_cfg;
            smart_cfg.strategy = train::Strategy::SmartUpdateOptComp;
            const auto smart_r =
                train::makeEngine(model, tc, smart_cfg)->runIteration();
            const double smart_g =
                train::gflopsPerDollar(model, tc, smart_cfg, smart_r);

            table.addRow({std::to_string(n), Table::num(base_g, 4),
                          Table::num(smart_g, 4),
                          smart_g > base_g ? "Smart-Inf" : "ZeRO-Inf"});
        }
        table.print(std::cout);
    }
    std::cout << "paper anchor (Fig 15): baseline wins at 1-3 devices "
                 "(SmartSSD price premium); Smart-Infinity wins from ~4 and "
                 "keeps improving with more CSDs.\n";
    return 0;
}
