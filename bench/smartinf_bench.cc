/**
 * @file
 * The one benchmark front door. Every paper figure/table reproduction,
 * ablation, and the scale-out study is a named scenario in the exp/
 * registry; this CLI lists them, runs any subset (or all), renders results
 * as aligned text, JSON, or CSV, and executes the underlying engine sweeps
 * on a thread pool with cross-scenario result caching — shared references
 * (e.g. the GPT-2 4.0B BASE runs used by several figures) simulate once
 * per invocation.
 *
 *   smartinf_bench --list
 *   smartinf_bench --scenario fig09 --format json --jobs 8
 *   smartinf_bench --all --format csv --out results.csv
 */
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exp/result_io.h"
#include "exp/scenario.h"
#include "obs/observation.h"
#include "perf/perf_harness.h"

using namespace smartinf;

namespace {

int
usage(std::ostream &os, int code)
{
    os << "usage: smartinf_bench [options]\n"
          "  --list            list registered scenarios and exit\n"
          "  --scenario NAME   run scenario NAME (repeatable)\n"
          "  --all             run every registered scenario\n"
          "  --perf            run the tracked perf benchmark instead of\n"
          "                    scenarios and emit its JSON (see --out);\n"
          "                    the repo's BENCH_*.json trajectory format\n"
          "  --format FORMAT   text (aligned tables), json (full\n"
          "                    structure), csv (tables), or records-csv\n"
          "                    (one flat line per engine run across all\n"
          "                    selected scenarios); default: text\n"
          "  --jobs N          sweep worker threads (default: hardware\n"
          "                    concurrency)\n"
          "  --out FILE        write output to FILE (default: stdout)\n"
          "  --no-cache        disable the sweep result cache\n"
          "  --quiet           suppress run-count stats on stderr\n"
          "  --trace FILE      record every engine run's simulation\n"
          "                    timeline and write Chrome-trace/Perfetto\n"
          "                    JSON to FILE (open in ui.perfetto.dev);\n"
          "                    forces --jobs 1 and disables the cache so\n"
          "                    every selected run is traced\n"
          "  --metrics FILE    write windowed counter time-series (link\n"
          "                    utilization, queue depth, KV occupancy,\n"
          "                    ...) as CSV to FILE; same forcing as\n"
          "                    --trace\n"
          "  --metrics-window S  counter window width in simulated\n"
          "                    seconds (default: 1.0)\n";
    return code;
}

void
printText(std::ostream &os, const exp::ScenarioResult &result)
{
    for (const auto &table : result.tables)
        table.print(os);
    for (const auto &note : result.notes)
        os << note << "\n";
}

void
printCsv(std::ostream &os, const exp::ScenarioResult &result)
{
    for (const auto &table : result.tables) {
        table.printCsv(os);
        os << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool list = false, all = false, no_cache = false, quiet = false;
    bool perf = false;
    std::string format = "text", out_path;
    obs::ObservationOptions obs_options;
    std::vector<std::string> names;
    int jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs < 1)
        jobs = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << flag << "\n";
                exit(usage(std::cerr, 2));
            }
            return argv[++i];
        };
        if (arg == "--list") {
            list = true;
        } else if (arg == "--scenario") {
            names.push_back(value("--scenario"));
        } else if (arg == "--all") {
            all = true;
        } else if (arg == "--perf") {
            perf = true;
        } else if (arg == "--format") {
            format = value("--format");
        } else if (arg == "--jobs") {
            const std::string v = value("--jobs");
            try {
                jobs = std::stoi(v);
            } catch (const std::exception &) {
                std::cerr << "bad --jobs value: " << v << "\n";
                return usage(std::cerr, 2);
            }
        } else if (arg == "--out") {
            out_path = value("--out");
        } else if (arg == "--no-cache") {
            no_cache = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--trace") {
            obs_options.trace_path = value("--trace");
        } else if (arg == "--metrics") {
            obs_options.metrics_path = value("--metrics");
        } else if (arg == "--metrics-window") {
            const std::string v = value("--metrics-window");
            try {
                obs_options.metrics_window = std::stod(v);
            } catch (const std::exception &) {
                obs_options.metrics_window = 0.0;
            }
            if (obs_options.metrics_window <= 0.0) {
                std::cerr << "bad --metrics-window value: " << v << "\n";
                return usage(std::cerr, 2);
            }
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            return usage(std::cerr, 2);
        }
    }
    if (format != "text" && format != "json" && format != "csv" &&
        format != "records-csv") {
        std::cerr << "unknown format: " << format << "\n";
        return usage(std::cerr, 2);
    }

    // Opt-in observability: install the session before anything runs.
    // Tracing serializes runs (one merge order, no cross-run interleaving
    // races) and disables the cache (a cache hit would skip the run —
    // and its timeline — entirely). Never affects simulated results.
    const bool observing = !obs_options.trace_path.empty() ||
                           !obs_options.metrics_path.empty();
    std::unique_ptr<obs::Observation> observation;
    if (observing) {
        observation = std::make_unique<obs::Observation>(obs_options);
        observation->install();
        if (jobs != 1 && !quiet)
            std::cerr << "[smartinf_bench] --trace/--metrics force "
                         "--jobs 1\n";
        jobs = 1;
        no_cache = true;
    }

    exp::registerBuiltinScenarios();
    auto &registry = exp::ScenarioRegistry::instance();

    if (list) {
        for (const auto *s : registry.all())
            std::cout << s->name << "\t" << s->title << "\n";
        return 0;
    }
    if (perf) {
        const auto samples = bench::runPerfCases();
        std::ofstream perf_file;
        if (!out_path.empty()) {
            perf_file.open(out_path);
            if (!perf_file) {
                std::cerr << "cannot open " << out_path << " for writing\n";
                return 1;
            }
        }
        bench::writePerfJson(out_path.empty() ? std::cout : perf_file,
                             samples);
        if (!quiet)
            bench::writePerfText(std::cerr, samples);
        if (observation && !observation->writeOutputs()) {
            std::cerr << "cannot write --trace/--metrics output\n";
            return 1;
        }
        return 0;
    }
    if (all)
        for (const auto *s : registry.all())
            names.push_back(s->name);
    if (names.empty()) {
        std::cerr << "nothing to run: pass --scenario NAME, --all, or "
                     "--list\n";
        return usage(std::cerr, 2);
    }

    // Resolve every name before running anything: a typo in the last name
    // must not waste the earlier runs or truncate the output document.
    std::vector<const exp::Scenario *> scenarios;
    for (const auto &name : names) {
        const auto *scenario = registry.find(name);
        if (!scenario) {
            std::cerr << "unknown scenario: " << name << " (try --list)\n";
            return 1;
        }
        scenarios.push_back(scenario);
    }

    std::ofstream file;
    if (!out_path.empty()) {
        file.open(out_path);
        if (!file) {
            std::cerr << "cannot open " << out_path << " for writing\n";
            return 1;
        }
    }
    std::ostream &os = out_path.empty() ? std::cout : file;

    exp::SweepRunner::Options options;
    options.jobs = jobs;
    options.cache = !no_cache;
    exp::SweepRunner runner(options);
    exp::ScenarioContext ctx{runner};

    if (format == "json")
        os << "[";
    bool first = true;
    std::vector<exp::RunRecord> all_records;
    for (const auto *scenario : scenarios) {
        const exp::ScenarioResult result = scenario->run(ctx);
        if (format == "json") {
            if (!first)
                os << ",";
            exp::writeScenarioJson(os, scenario->name, scenario->title,
                                   result);
        } else if (format == "csv") {
            printCsv(os, result);
        } else if (format == "records-csv") {
            all_records.insert(all_records.end(), result.records.begin(),
                               result.records.end());
        } else {
            printText(os, result);
        }
        first = false;
    }
    if (format == "json")
        os << "]\n";
    else if (format == "records-csv")
        exp::writeRecordsCsv(os, all_records);

    if (observation) {
        if (!observation->writeOutputs()) {
            std::cerr << "cannot write --trace/--metrics output\n";
            return 1;
        }
        if (!quiet) {
            std::cerr << "[smartinf_bench] observed "
                      << observation->runsRecorded() << " runs";
            if (!obs_options.trace_path.empty())
                std::cerr << ", trace -> " << obs_options.trace_path;
            if (!obs_options.metrics_path.empty())
                std::cerr << ", metrics -> " << obs_options.metrics_path;
            std::cerr << "\n";
        }
    }

    if (!quiet)
        std::cerr << "[smartinf_bench] " << runner.executedRuns()
                  << " engine runs, " << runner.cacheHits()
                  << " cache hits, jobs=" << jobs << "\n";
    return 0;
}
