/**
 * @file
 * Table III: KU15P resource utilization of the Adam updater, alone and
 * with the Top-K decompressor.
 */
#include "accel/decompressor.h"
#include "accel/fpga_resources.h"
#include "accel/updater.h"
#include "bench_util.h"

using namespace smartinf;
using namespace smartinf::bench;

int
main()
{
    Table table("Table III: FPGA resource utilization (KU15P)");
    table.setHeader({"module", "LUT (522K)", "BRAM (984)", "URAM (128)",
                     "DSP (1968)"});

    {
        accel::FpgaResourceModel fpga;
        auto updater = accel::makeUpdater(optim::OptimizerKind::Adam,
                                          optim::Hyperparams{});
        fpga.place(updater->footprint());
        table.addRow({"Adam", Table::percent(fpga.lutUtilization(), 2),
                      Table::percent(fpga.bramUtilization(), 2),
                      Table::percent(fpga.uramUtilization(), 2),
                      Table::percent(fpga.dspUtilization(), 2)});
    }
    {
        accel::FpgaResourceModel fpga;
        auto updater = accel::makeUpdater(optim::OptimizerKind::Adam,
                                          optim::Hyperparams{});
        auto decomp = accel::makeTopKDecompressor();
        fpga.place(updater->footprint());
        fpga.place(decomp->footprint());
        table.addRow({"Adam w/ Top-K",
                      Table::percent(fpga.lutUtilization(), 2),
                      Table::percent(fpga.bramUtilization(), 2),
                      Table::percent(fpga.uramUtilization(), 2),
                      Table::percent(fpga.dspUtilization(), 2)});
    }
    table.print(std::cout);
    std::cout << "paper anchor (Table III): Adam 33.66/27.13/34.38/11.03%; "
                 "Adam w/ Top-K 34.12/27.13/35.94/11.03%.\n";
    return 0;
}
