/**
 * @file
 * Fig 3(a): baseline (ZeRO-Infinity, 1 SSD) training-time breakdown across
 * model sizes — update + optimizer-state upload/offload dominates (>80% in
 * the paper) regardless of model size.
 */
#include "bench_util.h"

using namespace smartinf;
using namespace smartinf::bench;

int
main()
{
    Table table("Fig 3(a): baseline time breakdown vs model size (1 SSD)");
    table.setHeader({"model", "FW %", "BW+Grad %", "Update+Opt %",
                     "time/iter (s)"});
    for (double billions : {2.5, 8.3, 20.5}) {
        const auto model = train::ModelSpec::gpt2(billions);
        const auto r =
            runIteration(model, train::Strategy::Baseline, 1);
        const double total = r.iteration_time;
        table.addRow({model.name, Table::percent(r.phases.forward / total),
                      Table::percent(r.phases.backward / total),
                      Table::percent(r.phases.update / total),
                      Table::num(total)});
    }
    table.print(std::cout);
    std::cout << "paper anchor: Update+Opt consumes >80% of iteration time "
                 "at every size; FW is marginal.\n";
    return 0;
}
