/**
 * @file
 * Fig 11: (a) speedup vs number of CSDs (1-10), normalized to the 1-SSD
 * baseline, for the A5000 and A100 setups; (b) breakdown at 10 SSDs.
 */
#include "bench_util.h"

using namespace smartinf;
using namespace smartinf::bench;

int
main()
{
    const auto model = train::ModelSpec::gpt2(4.0);
    for (auto gpu : {train::GpuGrade::A5000, train::GpuGrade::A100_40GB}) {
        const double t1 =
            runIteration(model, train::Strategy::Baseline, 1, gpu)
                .iteration_time;
        Table table(std::string("Fig 11(a): scaling with #SSDs, GPU = ") +
                    train::gpuName(gpu) +
                    " (normalized to BASE @1 SSD)");
        table.setHeader({"#SSDs", "BASE", "SU+O", "SU+O+C"});
        for (int n : {1, 2, 4, 6, 8, 10}) {
            const double base =
                runIteration(model, train::Strategy::Baseline, n, gpu)
                    .iteration_time;
            const double suo =
                runIteration(model, train::Strategy::SmartUpdateOpt, n, gpu)
                    .iteration_time;
            const double suoc =
                runIteration(model, train::Strategy::SmartUpdateOptComp, n,
                             gpu)
                    .iteration_time;
            table.addRow({std::to_string(n), Table::factor(t1 / base),
                          Table::factor(t1 / suo),
                          Table::factor(t1 / suoc)});
        }
        table.print(std::cout);
    }

    Table breakdown("Fig 11(b): breakdown at 10 SSDs");
    breakdownHeader(breakdown);
    for (auto gpu : {train::GpuGrade::A5000, train::GpuGrade::A100_40GB}) {
        const auto base =
            runIteration(model, train::Strategy::Baseline, 10, gpu);
        addBreakdownRow(breakdown,
                        std::string(train::gpuName(gpu)) + " BASE", base,
                        1.0);
        for (auto strategy : {train::Strategy::SmartUpdateOpt,
                              train::Strategy::SmartUpdateOptComp}) {
            const auto r = runIteration(model, strategy, 10, gpu);
            addBreakdownRow(breakdown,
                            std::string(train::gpuName(gpu)) + " " +
                                train::strategyName(strategy),
                            r, base.iteration_time / r.iteration_time);
        }
    }
    breakdown.print(std::cout);
    std::cout << "paper anchors (Fig 11): baseline flat beyond 4 SSDs; "
                 "Smart-Infinity scales near-linearly; up to 2.11x on the "
                 "A100 (higher than A5000 because FW/BW shrink).\n";
    return 0;
}
