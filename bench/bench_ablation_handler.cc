/**
 * @file
 * Ablation (DESIGN.md §4.3): the internal data transfer handler. Sweeps the
 * naive vs. optimized handler across device counts and FPGA DRAM budgets
 * (smaller DRAM => more, smaller subgroups => more overlap opportunity),
 * isolating where the paper's §IV-B optimization pays off.
 */
#include "bench_util.h"

using namespace smartinf;
using namespace smartinf::bench;

int
main()
{
    const auto model = train::ModelSpec::gpt2(4.0);
    train::TrainConfig tc;

    Table table("Ablation: transfer handler (GPT-2 4.0B)");
    table.setHeader({"#CSDs", "DRAM usable", "naive upd (s)", "opt upd (s)",
                     "handler gain"});
    for (int n : {2, 6, 10}) {
        for (double usable : {0.8, 0.4, 0.2}) {
            train::SystemConfig naive_cfg;
            naive_cfg.strategy = train::Strategy::SmartUpdate;
            naive_cfg.num_devices = n;
            naive_cfg.calib.fpga_dram_usable = usable;
            const auto naive =
                train::makeEngine(model, tc, naive_cfg)->runIteration();

            train::SystemConfig opt_cfg = naive_cfg;
            opt_cfg.strategy = train::Strategy::SmartUpdateOpt;
            const auto opt =
                train::makeEngine(model, tc, opt_cfg)->runIteration();

            table.addRow({std::to_string(n), Table::percent(usable, 0),
                          Table::num(naive.phases.update),
                          Table::num(opt.phases.update),
                          Table::factor(naive.phases.update /
                                        opt.phases.update)});
        }
    }
    table.print(std::cout);
    std::cout << "Reading: the optimized handler's gain comes from keeping "
                 "the DMA queue busy through kernels; it grows as subgroups "
                 "shrink (smaller DRAM) because the naive handler stalls "
                 "once per tasklet.\n";
    return 0;
}
