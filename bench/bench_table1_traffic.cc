/**
 * @file
 * Table I: system-interconnect traffic per strategy, in units of M (the
 * FP16 model size), for Adam mixed-precision training.
 */
#include "bench_util.h"

using namespace smartinf;
using namespace smartinf::bench;

namespace {

std::string
inM(double bytes, double m)
{
    const double units = bytes / m;
    if (units == 0.0)
        return "-";
    return Table::num(units, 2) + "M";
}

} // namespace

int
main()
{
    const auto model = train::ModelSpec::gpt2(4.0);
    const double m = model.modelBytes();

    Table table("Table I: shared-interconnect traffic (Adam, per iteration)");
    table.setHeader({"strategy", "opt read", "opt write", "grad read",
                     "grad write", "param upstream", "internal r/w"});
    struct Row {
        const char *label;
        train::Strategy strategy;
        double comp;
    };
    const Row rows[] = {
        {"ZeRO-Inf", train::Strategy::Baseline, 0.02},
        {"SmartUpdate", train::Strategy::SmartUpdateOpt, 0.02},
        {"SmartComp (2%)", train::Strategy::SmartUpdateOptComp, 0.02},
        {"SmartComp (10%)", train::Strategy::SmartUpdateOptComp, 0.10},
    };
    for (const auto &row : rows) {
        const auto r = runIteration(model, row.strategy, 6,
                                    train::GpuGrade::A5000,
                                    optim::OptimizerKind::Adam, row.comp);
        const auto &t = r.traffic;
        table.addRow({row.label, inM(t.shared_opt_read, m),
                      inM(t.shared_opt_write, m), inM(t.shared_grad_read, m),
                      inM(t.shared_grad_write, m),
                      inM(t.shared_param_up, m),
                      inM(t.internal_read, m) + " / " +
                          inM(t.internal_write, m)});
    }
    table.print(std::cout);
    std::cout << "paper anchor (Table I): ZeRO-Inf 6M/6M opt + 2M/2M grad; "
                 "SmartUpdate 2M read (params) + 2M write (grads); "
                 "SmartComp c% x 2M gradient write.\n";
    return 0;
}
