/**
 * @file
 * Fig 16: training-time sensitivity to the Top-K compression ratio
 * (10% / 5% / 2% / 1% wire volume) for BERT-0.34B and GPT 4.0B at 6 and 10
 * SSDs, with SU+O as the uncompressed reference.
 */
#include "bench_util.h"

using namespace smartinf;
using namespace smartinf::bench;

namespace {

void
runModel(const train::ModelSpec &model)
{
    for (int n : {6, 10}) {
        Table table("Fig 16: " + model.name + ", #SSDs = " +
                    std::to_string(n));
        breakdownHeader(table);
        const auto base = runIteration(model, train::Strategy::Baseline, n);
        const auto suo =
            runIteration(model, train::Strategy::SmartUpdateOpt, n);
        addBreakdownRow(table, "SU+O (dense)", suo,
                        base.iteration_time / suo.iteration_time);
        for (double ratio : {0.10, 0.05, 0.02, 0.01}) {
            const auto r = runIteration(
                model, train::Strategy::SmartUpdateOptComp, n,
                train::GpuGrade::A5000, optim::OptimizerKind::Adam, ratio);
            addBreakdownRow(table,
                            "SU+O+C " + Table::percent(ratio, 0), r,
                            base.iteration_time / r.iteration_time);
        }
        table.print(std::cout);
    }
}

} // namespace

int
main()
{
    runModel(train::ModelSpec::bert(0.34));
    runModel(train::ModelSpec::gpt2(4.0));
    std::cout << "paper anchor (Fig 16): stronger compression keeps "
                 "shrinking the BW+Grad offload time; speedup gradually "
                 "increases as the ratio drops to 1%.\n";
    return 0;
}
