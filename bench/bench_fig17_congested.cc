/**
 * @file
 * Fig 17: the congested multi-GPU topology — 1-3 A4000 GPUs installed in
 * the same PCIe expansion as the CSDs (tensor parallelism), GPT-2 1.16B,
 * 10 devices. GPU traffic contends with storage traffic on the shared
 * interconnect, lowering but not erasing Smart-Infinity's win.
 */
#include "bench_util.h"

using namespace smartinf;
using namespace smartinf::bench;

int
main()
{
    const auto model = train::ModelSpec::gpt2(1.16);
    train::TrainConfig tc;
    Table table("Fig 17: congested topology, GPT-2 1.16B, 10 CSDs");
    breakdownHeader(table);
    for (int gpus : {1, 2, 3}) {
        train::SystemConfig base_cfg;
        base_cfg.num_devices = 10;
        base_cfg.gpu = train::GpuGrade::A4000;
        base_cfg.num_gpus = gpus;
        base_cfg.congested_topology = true;
        const auto base =
            train::makeEngine(model, tc, base_cfg)->runIteration();
        addBreakdownRow(table, std::to_string(gpus) + "xA4000 BASE", base,
                        1.0);

        train::SystemConfig smart_cfg = base_cfg;
        smart_cfg.strategy = train::Strategy::SmartUpdateOptComp;
        const auto smart =
            train::makeEngine(model, tc, smart_cfg)->runIteration();
        addBreakdownRow(table, std::to_string(gpus) + "xA4000 Ours", smart,
                        base.iteration_time / smart.iteration_time);
    }
    table.print(std::cout);
    std::cout << "paper anchor (Fig 17): 1.66-1.86x with ten CSDs; tensor "
                 "parallelism shrinks FW/BW but adds shared-interconnect "
                 "traffic to the BW+Grad phase.\n";
    return 0;
}
