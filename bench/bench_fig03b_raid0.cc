/**
 * @file
 * Fig 3(b): baseline speedup from RAID0 over 1-10 SSDs. The shared system
 * interconnect saturates the array after ~4 members (paper: ~2.4x ceiling
 * vs. the ideal linear scaling).
 */
#include "bench_util.h"

using namespace smartinf;
using namespace smartinf::bench;

int
main()
{
    const auto model = train::ModelSpec::gpt2(4.0);
    const double t1 =
        runIteration(model, train::Strategy::Baseline, 1).iteration_time;

    Table table("Fig 3(b): RAID0 scaling of the baseline (GPT-2 4.0B)");
    table.setHeader({"#SSDs", "time/iter (s)", "speedup vs 1 SSD",
                     "ideal"});
    for (int n : {1, 2, 4, 6, 8, 10}) {
        const auto r = runIteration(model, train::Strategy::Baseline, n);
        table.addRow({std::to_string(n), Table::num(r.iteration_time),
                      Table::factor(t1 / r.iteration_time),
                      Table::factor(static_cast<double>(n))});
    }
    table.print(std::cout);
    std::cout << "paper anchor: speedup saturates (~2.4x) after ~4 SSDs; "
                 "the PCIe system interconnect is the bottleneck.\n";
    return 0;
}
