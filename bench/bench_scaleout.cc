/**
 * @file
 * Scale-out: multi-node data-parallel Smart-Infinity — the curve the paper
 * never measures (its Fig 11 stops at intra-node CSD scaling). Sweeps node
 * count x CSDs-per-node and reports per-iteration time, cluster token
 * throughput, speedup over one node, and scaling efficiency. Data
 * parallelism multiplies the global batch by the node count, so speedup is
 * a throughput ratio; the gap to ideal N x is the (partially overlapped)
 * ring all-reduce plus its contention with PCIe offload traffic on each
 * node's shared host interconnect. A second table ablates the
 * backward-overlapped bucketed sync against a monolithic post-backward
 * all-reduce.
 */
#include <iostream>

#include "bench_util.h"
#include "dist/collective.h"
#include "dist/distributed_engine.h"

using namespace smartinf;
using namespace smartinf::bench;
using namespace smartinf::train;

namespace {

SystemConfig
scaleoutConfig(Strategy strategy, int nodes, int csds, bool overlap = true)
{
    SystemConfig sc;
    sc.strategy = strategy;
    sc.num_devices = csds;
    sc.num_nodes = nodes;
    sc.overlap_grad_sync = overlap;
    return sc;
}

void
sweepNodesByCsds(const ModelSpec &model)
{
    const TrainConfig tc;
    Table table("Scale-out: nodes x CSDs, data-parallel " +
                std::string(strategyName(Strategy::SmartUpdateOpt)) + ", " +
                model.name);
    table.setHeader({"nodes", "CSDs/node", "iter (s)", "tok/s", "speedup",
                     "efficiency", "sync TX/node (GB)"});

    for (int csds : {4, 6, 8}) {
        double single_node_throughput = 0.0;
        for (int nodes : {1, 2, 4, 8}) {
            const SystemConfig sc =
                scaleoutConfig(Strategy::SmartUpdateOpt, nodes, csds);
            auto engine = dist::makeDistributedEngine(model, tc, sc);
            const IterationResult r = engine->runIteration();
            const double tokens = tc.tokensPerIteration() * nodes;
            const double throughput = tokens / r.iteration_time;
            if (nodes == 1)
                single_node_throughput = throughput;
            const double speedup = throughput / single_node_throughput;
            table.addRow({std::to_string(nodes), std::to_string(csds),
                          Table::num(r.iteration_time, 3),
                          Table::num(throughput, 1),
                          Table::factor(speedup),
                          Table::percent(speedup / nodes),
                          Table::num(r.traffic.internode_tx /
                                         std::max(nodes, 1) / 1e9,
                                     2)});
        }
    }
    table.print(std::cout);
}

void
ablateSyncOverlap(const ModelSpec &model)
{
    // With dense offload (SU+O) the shared host interconnect is already
    // saturated by gradient writes, so bucketing buys little; once SmartComp
    // shrinks the offload wire (SU+O+C) the sync can actually hide behind
    // backward compute.
    const TrainConfig tc;
    Table table("Gradient-sync overlap ablation (8 CSDs/node)");
    table.setHeader({"strategy", "nodes", "overlapped (s)", "monolithic (s)",
                     "overlap gain"});
    for (Strategy s :
         {Strategy::SmartUpdateOpt, Strategy::SmartUpdateOptComp}) {
        for (int nodes : {2, 4, 8}) {
            const auto overlapped =
                dist::makeDistributedEngine(model, tc,
                                            scaleoutConfig(s, nodes, 8))
                    ->runIteration();
            const auto monolithic =
                dist::makeDistributedEngine(
                    model, tc, scaleoutConfig(s, nodes, 8, false))
                    ->runIteration();
            table.addRow({strategyName(s), std::to_string(nodes),
                          Table::num(overlapped.iteration_time, 3),
                          Table::num(monolithic.iteration_time, 3),
                          Table::factor(monolithic.iteration_time /
                                        overlapped.iteration_time)});
        }
    }
    table.print(std::cout);
}

void
strategyComparisonAtScale(const ModelSpec &model)
{
    const TrainConfig tc;
    Table table("4-node cluster by strategy (8 devices/node)");
    breakdownHeader(table);
    const auto base =
        dist::makeDistributedEngine(
            model, tc, scaleoutConfig(Strategy::Baseline, 4, 8))
            ->runIteration();
    for (Strategy s : {Strategy::Baseline, Strategy::SmartUpdate,
                       Strategy::SmartUpdateOpt,
                       Strategy::SmartUpdateOptComp}) {
        const auto r = dist::makeDistributedEngine(model, tc,
                                                   scaleoutConfig(s, 4, 8))
                           ->runIteration();
        addBreakdownRow(table, strategyName(s), r,
                        base.iteration_time / r.iteration_time);
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    const ModelSpec model = ModelSpec::gpt2(4.0);
    sweepNodesByCsds(model);
    std::cout << "\n";
    ablateSyncOverlap(model);
    std::cout << "\n";
    strategyComparisonAtScale(model);
    return 0;
}
