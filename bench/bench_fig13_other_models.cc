/**
 * @file
 * Fig 13: applying Smart-Infinity to BLOOM (3B / 7.1B) and ViT
 * (0.30B / 0.63B) — the speedup is insensitive to the transformer flavour.
 */
#include "bench_util.h"

using namespace smartinf;
using namespace smartinf::bench;

int
main()
{
    const train::ModelSpec models[] = {
        train::ModelSpec::bloom(3.0), train::ModelSpec::bloom(7.1),
        train::ModelSpec::vit(0.30), train::ModelSpec::vit(0.63)};
    for (int n : {6, 10}) {
        Table table("Fig 13: BLOOM and ViT, #SSDs = " + std::to_string(n));
        table.setHeader({"model", "BASE (s)", "SU+O", "SU+O+C"});
        for (const auto &model : models) {
            const auto base =
                runIteration(model, train::Strategy::Baseline, n);
            const auto suo =
                runIteration(model, train::Strategy::SmartUpdateOpt, n);
            const auto suoc =
                runIteration(model, train::Strategy::SmartUpdateOptComp, n);
            table.addRow(
                {model.name, Table::num(base.iteration_time),
                 Table::factor(base.iteration_time / suo.iteration_time),
                 Table::factor(base.iteration_time / suoc.iteration_time)});
        }
        table.print(std::cout);
    }
    std::cout << "paper anchor (Fig 13): 1.32-1.85x across BLOOM and ViT, "
                 "mirroring the GPT-2/BERT results.\n";
    return 0;
}
