/**
 * @file
 * Tracked performance benchmark for the simulation core. Times a fixed set
 * of representative scenarios (paper figures, the compression ablation, and
 * the multi-node scale-out engine at 4 and 16 nodes) and reports host
 * wall-clock, discrete events executed, events/sec, and peak RSS. The
 * emitted JSON (BENCH_PR<N>.json) is the repo's performance trajectory:
 * every PR that touches the hot path appends a point, CI uploads it as an
 * artifact, and regressions show up as a drop in events/sec on the same
 * case names. See ROADMAP.md ("perf trajectory") for how to read/extend it.
 */
#ifndef SMARTINF_BENCH_PERF_HARNESS_H
#define SMARTINF_BENCH_PERF_HARNESS_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace smartinf::bench {

/** One timed case of the perf benchmark. */
struct PerfSample {
    std::string name;          ///< stable case name (the trajectory key)
    double wall_s = 0.0;       ///< host wall-clock for the whole case
    std::uint64_t events = 0;  ///< discrete events executed across its runs
    double events_per_sec = 0.0;
    double sim_seconds = 0.0;  ///< simulated seconds covered (sanity anchor)
    int engine_runs = 0;       ///< engine iterations the case executed
    long peak_rss_kb = 0;      ///< process high-water RSS after the case
                               ///< (monotonic across cases by construction)
};

/**
 * Execute the tracked cases (fig09, fig11, ablation_compression via the
 * scenario registry with caching disabled; scaleout engines at 4 and 16
 * nodes and the serve_smart_16req serving workload directly).
 * registerBuiltinScenarios() must have run.
 */
std::vector<PerfSample> runPerfCases();

/** Serialize samples as the BENCH_PR*.json document. */
void writePerfJson(std::ostream &os, const std::vector<PerfSample> &samples);

/** Human-readable one-line-per-case summary (stderr progress/reporting). */
void writePerfText(std::ostream &os, const std::vector<PerfSample> &samples);

} // namespace smartinf::bench

#endif // SMARTINF_BENCH_PERF_HARNESS_H
