/**
 * @file
 * Tracked performance benchmark for the simulation core. Times a fixed set
 * of representative scenarios (paper figures, the compression ablation, and
 * the multi-node scale-out engine at 4 and 16 nodes) and reports host
 * wall-clock, discrete events executed, events/sec, and peak RSS. The
 * emitted JSON (BENCH_PR<N>.json) is the repo's performance trajectory:
 * every PR that touches the hot path appends a point, CI uploads it as an
 * artifact, and regressions show up as a drop in events/sec on the same
 * case names. See ROADMAP.md ("perf trajectory") for how to read/extend it.
 *
 * Schema 2 additions:
 *  - rss_delta_kb: per-case growth of the process RSS high-water mark
 *    (peak_rss_kb is inherently monotonic across cases — getrusage reports
 *    the process-lifetime peak — so the delta, not the absolute value, is
 *    the per-case memory signal; 0 means an earlier case already peaked
 *    higher).
 *  - wall_only: cases that execute no engine runs (ablation_compression is
 *    a functional-layer sweep) keep events/sim_seconds at 0 by
 *    construction; the flag marks that explicitly instead of leaving the
 *    zeros ambiguous.
 *  - profile: per-subsystem host wall-time breakdown (obs/profiler.h)
 *    from a second, profiled execution of the same case — engines are
 *    deterministic, so the re-run performs identical work while the timed
 *    pass stays probe-free. Sections overlap (event_dispatch contains the
 *    others); the activity counters (flows/links touched per recompute)
 *    explain the events/sec gap between training and serving cases.
 */
#ifndef SMARTINF_BENCH_PERF_HARNESS_H
#define SMARTINF_BENCH_PERF_HARNESS_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/profiler.h"

namespace smartinf::bench {

/** Per-subsystem wall-time breakdown of one case's profiled re-run. */
struct PerfProfile {
    bool collected = false;
    /** Outermost wall seconds and entry counts per profiled section,
     *  indexed by obs::Section. */
    double seconds[static_cast<int>(obs::Section::kCount)] = {};
    std::uint64_t calls[static_cast<int>(obs::Section::kCount)] = {};
    std::uint64_t flows_touched = 0; ///< sum of recomputed component sizes
    std::uint64_t links_touched = 0;
    std::uint64_t task_launches = 0;
    std::uint64_t flow_retires = 0;
};

/** One timed case of the perf benchmark. */
struct PerfSample {
    std::string name;          ///< stable case name (the trajectory key)
    double wall_s = 0.0;       ///< host wall-clock for the whole case
    std::uint64_t events = 0;  ///< discrete events executed across its runs
    double events_per_sec = 0.0;
    double sim_seconds = 0.0;  ///< simulated seconds covered (sanity anchor)
    int engine_runs = 0;       ///< engine iterations the case executed
    long peak_rss_kb = 0;      ///< process high-water RSS after the case
                               ///< (monotonic across cases by construction)
    long rss_delta_kb = 0;     ///< high-water growth during this case
    bool wall_only = false;    ///< no engine runs: only wall_s/RSS tracked
    PerfProfile profile;       ///< subsystem breakdown (profiled re-run)
};

/**
 * Execute the tracked cases (fig09, fig11, ablation_compression via the
 * scenario registry with caching disabled; scaleout engines at 4 and 16
 * nodes and the serve_smart_16req serving workload directly).
 * registerBuiltinScenarios() must have run.
 */
std::vector<PerfSample> runPerfCases();

/** Serialize samples as the BENCH_PR*.json document. */
void writePerfJson(std::ostream &os, const std::vector<PerfSample> &samples);

/** Human-readable one-line-per-case summary (stderr progress/reporting). */
void writePerfText(std::ostream &os, const std::vector<PerfSample> &samples);

} // namespace smartinf::bench

#endif // SMARTINF_BENCH_PERF_HARNESS_H
