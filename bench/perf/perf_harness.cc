#include "perf/perf_harness.h"

#include <chrono>
#include <iomanip>
#include <ostream>

#include <sys/resource.h>

#include "common/logging.h"
#include "exp/scenario.h"
#include "serve/inference_workload.h"
#include "train/engine.h"

namespace smartinf::bench {

namespace {

long
peakRssKb()
{
    struct rusage usage {};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    return usage.ru_maxrss; // KiB on Linux.
}

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Time one scenario end to end with a cold, serial, cache-less runner so
 *  the measurement is the engine work, not the cache. */
PerfSample
scenarioCase(const std::string &name)
{
    const auto *scenario = exp::ScenarioRegistry::instance().find(name);
    SI_REQUIRE(scenario != nullptr, "perf case references unknown scenario ",
               name);
    exp::SweepRunner::Options options;
    options.jobs = 1;
    options.cache = false;
    exp::SweepRunner runner(options);
    exp::ScenarioContext ctx{runner};

    PerfSample sample;
    sample.name = name;
    const auto start = Clock::now();
    const exp::ScenarioResult result = scenario->run(ctx);
    sample.wall_s = secondsSince(start);
    for (const auto &rec : result.records) {
        sample.events += rec.result.events_executed;
        sample.sim_seconds += rec.result.iteration_time;
        ++sample.engine_runs;
    }
    sample.events_per_sec =
        sample.wall_s > 0.0 ? sample.events / sample.wall_s : 0.0;
    sample.peak_rss_kb = peakRssKb();
    return sample;
}

/** Time one direct engine run (the scale-out acceptance points). */
PerfSample
engineCase(const std::string &name, int nodes)
{
    const auto model = train::ModelSpec::gpt2(4.0);
    train::TrainConfig train;
    train::SystemConfig system;
    system.strategy = train::Strategy::SmartUpdateOpt;
    system.num_devices = 8;
    system.num_nodes = nodes;

    PerfSample sample;
    sample.name = name;
    const auto start = Clock::now();
    auto engine = train::makeEngine(model, train, system);
    const train::IterationResult result = engine->runIteration();
    sample.wall_s = secondsSince(start);
    sample.events = result.events_executed;
    sample.sim_seconds = result.iteration_time;
    sample.engine_runs = 1;
    sample.events_per_sec =
        sample.wall_s > 0.0 ? sample.events / sample.wall_s : 0.0;
    sample.peak_rss_kb = peakRssKb();
    return sample;
}

/** Time one direct serving run (the dynamic-task-graph hot path). */
PerfSample
serveCase(const std::string &name, int num_requests,
          bool kv_heavy = false)
{
    const auto model = train::ModelSpec::gpt2(4.0);
    train::SystemConfig system;
    system.strategy = train::Strategy::SmartUpdateOptComp;
    system.num_devices = 6;

    serve::ServeConfig config;
    config.scheduler = serve::SchedulerPolicy::Continuous;
    config.num_requests = num_requests;
    config.arrival_rate = 0.25;
    config.prompt_tokens = 256;
    config.output_tokens = 16;
    config.max_batch = 8;
    if (kv_heavy) {
        // The KV-heavy tracked case: sampled output lengths (ragged
        // batches) + tight KV budgets so every decode step issues spill
        // flows on top of the parameter stream — the serving-fidelity
        // hot path added in PR 5.
        config.output_lengths.kind = serve::LengthDistKind::Lognormal;
        config.output_lengths.log_mean = 3.5; // median ~33 tokens
        config.output_lengths.log_sigma = 0.7;
        config.output_lengths.min_tokens = 8;
        config.output_lengths.max_tokens = 128;
        config.kv.enabled = true;
        config.kv.hbm_budget = GiB(0.25);
        config.kv.host_budget = GiB(0.5);
    }

    PerfSample sample;
    sample.name = name;
    const auto start = Clock::now();
    auto engine = train::makeEngine(model, {}, system);
    serve::InferenceWorkload workload(model, config);
    const train::WorkloadResult result = engine->run(workload);
    sample.wall_s = secondsSince(start);
    sample.events = result.events_executed;
    sample.sim_seconds = result.iteration_time;
    sample.engine_runs = 1;
    sample.events_per_sec =
        sample.wall_s > 0.0 ? sample.events / sample.wall_s : 0.0;
    sample.peak_rss_kb = peakRssKb();
    return sample;
}

} // namespace

std::vector<PerfSample>
runPerfCases()
{
    std::vector<PerfSample> samples;
    samples.push_back(scenarioCase("fig09"));
    samples.push_back(scenarioCase("fig11"));
    // Functional-layer only (no engine records): events/sim_seconds stay 0
    // by construction — this case tracks wall_s and RSS, nothing else.
    samples.push_back(scenarioCase("ablation_compression"));
    samples.push_back(engineCase("scaleout_n4", 4));
    samples.push_back(engineCase("scaleout_n16", 16));
    samples.push_back(serveCase("serve_smart_16req", 16));
    samples.push_back(serveCase("serve_kv_24req", 24, /*kv_heavy=*/true));
    return samples;
}

void
writePerfJson(std::ostream &os, const std::vector<PerfSample> &samples)
{
    os << "{\n  \"bench\": \"smartinf_perf\",\n  \"schema\": 1,\n"
       << "  \"cases\": [\n";
    const auto flags = os.flags();
    os << std::setprecision(6) << std::fixed;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const PerfSample &s = samples[i];
        os << "    {\"name\": \"" << s.name << "\""
           << ", \"wall_s\": " << s.wall_s
           << ", \"events\": " << s.events
           << ", \"events_per_sec\": " << std::setprecision(0) << s.events_per_sec
           << std::setprecision(6)
           << ", \"sim_seconds\": " << s.sim_seconds
           << ", \"engine_runs\": " << s.engine_runs
           << ", \"peak_rss_kb\": " << s.peak_rss_kb << "}"
           << (i + 1 < samples.size() ? "," : "") << "\n";
    }
    os.flags(flags);
    os << "  ]\n}\n";
}

void
writePerfText(std::ostream &os, const std::vector<PerfSample> &samples)
{
    for (const PerfSample &s : samples) {
        os << "[perf] " << s.name << ": " << std::fixed
           << std::setprecision(3) << s.wall_s << " s wall, " << s.events
           << " events (" << std::setprecision(0) << s.events_per_sec
           << "/s), " << s.engine_runs << " runs, peak RSS "
           << s.peak_rss_kb << " KiB\n";
        os.unsetf(std::ios_base::floatfield);
    }
}

} // namespace smartinf::bench
