#include "perf/perf_harness.h"

#include <chrono>
#include <functional>
#include <iomanip>
#include <ostream>

#include <sys/resource.h>

#include "common/logging.h"
#include "exp/scenario.h"
#include "serve/inference_workload.h"
#include "train/engine.h"

namespace smartinf::bench {

namespace {

long
peakRssKb()
{
    struct rusage usage {};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    return usage.ru_maxrss; // KiB on Linux.
}

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** What one execution of a case's workload produced. */
struct CaseStats {
    std::uint64_t events = 0;
    double sim_seconds = 0.0;
    int engine_runs = 0;
};

/**
 * Time one case: a clean probe-free pass for the trajectory numbers, then
 * (unless wall_only) a second pass under the subsystem profiler for the
 * breakdown. Engines are deterministic, so both passes do identical work.
 */
PerfSample
timedCase(const std::string &name, bool wall_only,
          const std::function<CaseStats()> &body)
{
    PerfSample sample;
    sample.name = name;
    sample.wall_only = wall_only;

    const long rss_before = peakRssKb();
    const auto start = Clock::now();
    const CaseStats stats = body();
    sample.wall_s = secondsSince(start);
    sample.events = stats.events;
    sample.sim_seconds = stats.sim_seconds;
    sample.engine_runs = stats.engine_runs;
    sample.events_per_sec =
        sample.wall_s > 0.0 ? sample.events / sample.wall_s : 0.0;
    sample.peak_rss_kb = peakRssKb();
    sample.rss_delta_kb = sample.peak_rss_kb - rss_before;

    if (wall_only)
        return sample;

    auto &prof = obs::Profiler::instance();
    prof.enable(true);
    prof.reset();
    const CaseStats again = body();
    prof.enable(false);
    SI_ASSERT(again.events == stats.events,
              "profiled re-run diverged for case ", name);
    sample.profile.collected = true;
    for (int s = 0; s < static_cast<int>(obs::Section::kCount); ++s) {
        sample.profile.seconds[s] =
            prof.seconds(static_cast<obs::Section>(s));
        sample.profile.calls[s] = prof.calls(static_cast<obs::Section>(s));
    }
    sample.profile.flows_touched = prof.flowsTouched();
    sample.profile.links_touched = prof.linksTouched();
    sample.profile.task_launches = prof.taskLaunches();
    sample.profile.flow_retires = prof.flowRetires();
    return sample;
}

/** Run one scenario end to end with a cold, serial, cache-less runner so
 *  the measurement is the engine work, not the cache. */
CaseStats
runScenario(const std::string &name)
{
    const auto *scenario = exp::ScenarioRegistry::instance().find(name);
    SI_REQUIRE(scenario != nullptr, "perf case references unknown scenario ",
               name);
    exp::SweepRunner::Options options;
    options.jobs = 1;
    options.cache = false;
    exp::SweepRunner runner(options);
    exp::ScenarioContext ctx{runner};

    const exp::ScenarioResult result = scenario->run(ctx);
    CaseStats stats;
    for (const auto &rec : result.records) {
        stats.events += rec.result.events_executed;
        stats.sim_seconds += rec.result.iteration_time;
        ++stats.engine_runs;
    }
    return stats;
}

PerfSample
scenarioCase(const std::string &name, bool wall_only = false)
{
    return timedCase(name, wall_only, [&] { return runScenario(name); });
}

/** Time one direct engine run (the scale-out acceptance points). */
PerfSample
engineCase(const std::string &name, int nodes)
{
    return timedCase(name, /*wall_only=*/false, [nodes] {
        const auto model = train::ModelSpec::gpt2(4.0);
        train::TrainConfig train;
        train::SystemConfig system;
        system.strategy = train::Strategy::SmartUpdateOpt;
        system.num_devices = 8;
        system.num_nodes = nodes;

        auto engine = train::makeEngine(model, train, system);
        const train::IterationResult result = engine->runIteration();
        return CaseStats{result.events_executed, result.iteration_time, 1};
    });
}

/** Time one direct serving run (the dynamic-task-graph hot path). */
PerfSample
serveCase(const std::string &name, int num_requests, bool kv_heavy = false,
          bool paged = false)
{
    return timedCase(name, /*wall_only=*/false, [num_requests, kv_heavy,
                                                 paged] {
        const auto model = train::ModelSpec::gpt2(4.0);
        train::SystemConfig system;
        system.strategy = train::Strategy::SmartUpdateOptComp;
        system.num_devices = 6;

        serve::ServeConfig config;
        config.scheduler = serve::SchedulerPolicy::Continuous;
        config.num_requests = num_requests;
        config.arrival_rate = 0.25;
        config.prompt_tokens = 256;
        config.output_tokens = 16;
        config.max_batch = 8;
        if (kv_heavy) {
            // The KV-heavy tracked case: sampled output lengths (ragged
            // batches) + tight KV budgets so every decode step issues
            // spill flows on top of the parameter stream — the
            // serving-fidelity hot path added in PR 5.
            config.output_lengths.kind = serve::LengthDistKind::Lognormal;
            config.output_lengths.log_mean = 3.5; // median ~33 tokens
            config.output_lengths.log_sigma = 0.7;
            config.output_lengths.min_tokens = 8;
            config.output_lengths.max_tokens = 128;
            config.kv.enabled = true;
            config.kv.hbm_budget = GiB(0.25);
            config.kv.host_budget = GiB(0.5);
        }
        if (paged) {
            // The paged-allocator tracked case (PR 7): same stream as the
            // KV-heavy case, but the arena is 16-token pages and half the
            // requests share one of two 200-token prefixes — block-table
            // bookkeeping, range merging, and the prefix cache all on the
            // timed path.
            config.kv.layout = serve::KvLayout::Paged;
            config.kv.block_tokens = 16;
            config.kv.prefix.share_fraction = 0.5;
            config.kv.prefix.num_prefixes = 2;
            config.kv.prefix.prefix_tokens = 200;
        }

        auto engine = train::makeEngine(model, {}, system);
        serve::InferenceWorkload workload(model, config);
        const train::WorkloadResult result = engine->run(workload);
        return CaseStats{result.events_executed, result.iteration_time, 1};
    });
}

/** Time one serving run under fault injection (PR 8): replica crashes,
 *  drain/retry/shed and link-degradation recompute all on the timed
 *  path — the revocation-domain and canceller bookkeeping is free only
 *  when faults are off, and this case is what tracks its real cost. */
PerfSample
failoverCase(const std::string &name, int num_requests)
{
    return timedCase(name, /*wall_only=*/false, [num_requests] {
        const auto model = train::ModelSpec::gpt2(4.0);
        train::SystemConfig system;
        system.strategy = train::Strategy::SmartUpdateOptComp;
        system.num_devices = 6;
        system.num_nodes = 2;

        serve::ServeConfig config;
        config.scheduler = serve::SchedulerPolicy::Continuous;
        config.num_requests = num_requests;
        config.arrival_rate = 0.25;
        config.prompt_tokens = 256;
        config.output_tokens = 16;
        config.max_batch = 8;
        config.fault.enabled = true;
        config.fault.node_mtbf = 20.0;
        config.fault.degrade_mtbf = 40.0;
        config.fault.repair_time = 15.0;
        config.fault.horizon = 300.0;

        auto engine = train::makeEngine(model, {}, system);
        serve::InferenceWorkload workload(model, config);
        const train::WorkloadResult result = engine->run(workload);
        return CaseStats{result.events_executed, result.iteration_time, 1};
    });
}

/** Time one serving run under the cluster control plane (PR 9): JSQ
 *  dispatch, SLO admission, and queue-driven autoscaling with real
 *  warm-up prefills all on the timed path — the controller's per-dispatch
 *  load reads, admission predictions, and windowed autoscale ticks are
 *  free only when ctrl is off, and this case tracks their real cost. */
PerfSample
autoscaleCase(const std::string &name, int num_requests)
{
    return timedCase(name, /*wall_only=*/false, [num_requests] {
        const auto model = train::ModelSpec::gpt2(4.0);
        train::SystemConfig system;
        system.strategy = train::Strategy::SmartUpdateOptComp;
        system.num_devices = 6;
        system.num_nodes = 3;

        serve::ServeConfig config;
        config.scheduler = serve::SchedulerPolicy::Continuous;
        config.num_requests = num_requests;
        config.arrival_rate = 0.5; // bursty enough to trip the scaler
        config.prompt_tokens = 256;
        config.output_tokens = 16;
        config.max_batch = 2;
        config.ctrl.enabled = true;
        config.ctrl.policy = ctrl::DispatchPolicy::JoinShortestQueue;
        config.ctrl.slo.admission = ctrl::AdmissionMode::Reject;
        config.ctrl.slo.target_p99_s = 120.0; // loose: admit everything
        config.ctrl.autoscale.enabled = true;
        config.ctrl.autoscale.min_replicas = 1;
        config.ctrl.autoscale.max_replicas = 3;
        config.ctrl.autoscale.window_s = 5.0;
        config.ctrl.autoscale.cooldown_s = 10.0;
        config.ctrl.autoscale.scale_up_depth = 1.5;
        config.ctrl.autoscale.scale_down_depth = 0.25;

        auto engine = train::makeEngine(model, {}, system);
        serve::InferenceWorkload workload(model, config);
        const train::WorkloadResult result = engine->run(workload);
        return CaseStats{result.events_executed, result.iteration_time, 1};
    });
}

/** Time one streaming serving run (PR 10): 10^5 requests drawn lazily
 *  from the RequestSource with record_cap armed — per-request records
 *  fold into the streaming sketch past the cap and the task graph trims
 *  its completed prefix. The case tracks two things at once: the lazy
 *  generation hot path's events/sec, and (via rss_delta_kb) that peak
 *  memory stays O(in-flight), independent of the stream length. */
PerfSample
streamCase(const std::string &name, int num_requests)
{
    return timedCase(name, /*wall_only=*/false, [num_requests] {
        const auto model = train::ModelSpec::gpt2(0.5);
        train::SystemConfig system;
        system.strategy = train::Strategy::SmartUpdateOptComp;
        system.num_devices = 4;

        serve::ServeConfig config;
        config.scheduler = serve::SchedulerPolicy::Continuous;
        config.num_requests = num_requests;
        config.arrival_rate = 8.0;
        config.prompt_tokens = 64;
        config.output_tokens = 4;
        config.max_batch = 8;
        config.record_cap = 4096;
        config.stream_window_s = 60.0;

        auto engine = train::makeEngine(model, {}, system);
        serve::InferenceWorkload workload(model, config);
        const train::WorkloadResult result = engine->run(workload);
        return CaseStats{result.events_executed, result.iteration_time, 1};
    });
}

} // namespace

std::vector<PerfSample>
runPerfCases()
{
    std::vector<PerfSample> samples;
    samples.push_back(scenarioCase("fig09"));
    samples.push_back(scenarioCase("fig11"));
    // Functional-layer only (no engine records): events/sim_seconds stay 0
    // by construction — this case tracks wall_s and RSS, nothing else
    // (wall_only in the JSON).
    samples.push_back(scenarioCase("ablation_compression",
                                   /*wall_only=*/true));
    samples.push_back(engineCase("scaleout_n4", 4));
    samples.push_back(engineCase("scaleout_n16", 16));
    samples.push_back(serveCase("serve_smart_16req", 16));
    samples.push_back(serveCase("serve_kv_24req", 24, /*kv_heavy=*/true));
    samples.push_back(serveCase("serve_paged_24req", 24, /*kv_heavy=*/true,
                                /*paged=*/true));
    samples.push_back(failoverCase("serve_failover_24req", 24));
    samples.push_back(autoscaleCase("serve_autoscale_24req", 24));
    samples.push_back(streamCase("serve_stream_100k", 100000));
    return samples;
}

void
writePerfJson(std::ostream &os, const std::vector<PerfSample> &samples)
{
    os << "{\n  \"bench\": \"smartinf_perf\",\n  \"schema\": 2,\n"
       << "  \"notes\": {\n"
       << "    \"peak_rss_kb\": \"process-lifetime RSS high-water mark "
          "after the case; monotonic across cases by construction\",\n"
       << "    \"rss_delta_kb\": \"growth of the high-water mark during "
          "the case (0 = an earlier case already peaked higher)\",\n"
       << "    \"wall_only\": \"case runs no engines; events and "
          "sim_seconds are 0 by construction\",\n"
       << "    \"profile\": \"host wall-time breakdown from a second, "
          "profiled identical run; sections overlap (event_dispatch "
          "contains the others)\"\n"
       << "  },\n"
       << "  \"cases\": [\n";
    const auto flags = os.flags();
    os << std::setprecision(6) << std::fixed;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const PerfSample &s = samples[i];
        os << "    {\"name\": \"" << s.name << "\""
           << ", \"wall_s\": " << s.wall_s
           << ", \"events\": " << s.events
           << ", \"events_per_sec\": " << std::setprecision(0) << s.events_per_sec
           << std::setprecision(6)
           << ", \"sim_seconds\": " << s.sim_seconds
           << ", \"engine_runs\": " << s.engine_runs
           << ", \"peak_rss_kb\": " << s.peak_rss_kb
           << ", \"rss_delta_kb\": " << s.rss_delta_kb
           << ", \"wall_only\": " << (s.wall_only ? "true" : "false");
        if (s.profile.collected) {
            os << ",\n     \"profile\": {";
            for (int sec = 0; sec < static_cast<int>(obs::Section::kCount);
                 ++sec) {
                const char *key =
                    obs::sectionName(static_cast<obs::Section>(sec));
                os << "\"" << key << "_s\": " << s.profile.seconds[sec]
                   << ", \"" << key << "_calls\": " << s.profile.calls[sec]
                   << ", ";
            }
            os << "\"flows_touched\": " << s.profile.flows_touched
               << ", \"links_touched\": " << s.profile.links_touched
               << ", \"task_launches\": " << s.profile.task_launches
               << ", \"flow_retires\": " << s.profile.flow_retires << "}";
        }
        os << "}" << (i + 1 < samples.size() ? "," : "") << "\n";
    }
    os.flags(flags);
    os << "  ]\n}\n";
}

void
writePerfText(std::ostream &os, const std::vector<PerfSample> &samples)
{
    for (const PerfSample &s : samples) {
        os << "[perf] " << s.name << ": " << std::fixed
           << std::setprecision(3) << s.wall_s << " s wall, " << s.events
           << " events (" << std::setprecision(0) << s.events_per_sec
           << "/s), " << s.engine_runs << " runs, peak RSS "
           << s.peak_rss_kb << " KiB (+" << s.rss_delta_kb << ")";
        if (s.profile.collected) {
            os << std::setprecision(3) << " | dispatch "
               << s.profile.seconds[static_cast<int>(
                      obs::Section::EventDispatch)]
               << " s, recompute "
               << s.profile.seconds[static_cast<int>(
                      obs::Section::FlowRecompute)]
               << " s, " << s.profile.flows_touched << " flows touched";
        }
        os << "\n";
        os.unsetf(std::ios_base::floatfield);
    }
}

} // namespace smartinf::bench
