/**
 * @file
 * Shared helpers for the benchmark harnesses that regenerate the paper's
 * tables and figures. Each bench prints the same rows/series the paper
 * reports; EXPERIMENTS.md records paper-vs-measured values.
 */
#ifndef SMARTINF_BENCH_BENCH_UTIL_H
#define SMARTINF_BENCH_BENCH_UTIL_H

#include <iostream>
#include <string>

#include "common/table.h"
#include "train/engine.h"

namespace smartinf::bench {

/** Run one iteration for a (model, strategy, devices, gpu) combination. */
inline train::IterationResult
runIteration(const train::ModelSpec &model, train::Strategy strategy,
             int devices, train::GpuGrade gpu = train::GpuGrade::A5000,
             optim::OptimizerKind optimizer = optim::OptimizerKind::Adam,
             double comp_fraction = 0.02)
{
    train::TrainConfig tc;
    train::SystemConfig sc;
    sc.strategy = strategy;
    sc.num_devices = devices;
    sc.gpu = gpu;
    sc.optimizer = optimizer;
    sc.compression_wire_fraction = comp_fraction;
    return train::makeEngine(model, tc, sc)->runIteration();
}

/** Append the standard breakdown columns for a result. */
inline void
addBreakdownRow(Table &table, const std::string &label,
                const train::IterationResult &r, double speedup)
{
    table.addRow({label, Table::num(r.phases.forward),
                  Table::num(r.phases.backward), Table::num(r.phases.update),
                  Table::num(r.iteration_time), Table::factor(speedup)});
}

inline void
breakdownHeader(Table &table)
{
    table.setHeader({"config", "FW (s)", "BW+Grad (s)", "Update+Opt (s)",
                     "total (s)", "speedup"});
}

} // namespace smartinf::bench

#endif // SMARTINF_BENCH_BENCH_UTIL_H
