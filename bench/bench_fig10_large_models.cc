/**
 * @file
 * Fig 10: scalability to larger GPT models (16.6B / 24.8B / 33.0B) with 6
 * and 10 SSDs — Smart-Infinity's speedup holds as the model grows.
 */
#include "bench_util.h"

using namespace smartinf;
using namespace smartinf::bench;

int
main()
{
    for (int n : {6, 10}) {
        Table table("Fig 10: larger models, #SSDs = " + std::to_string(n));
        breakdownHeader(table);
        for (double billions : {16.6, 24.8, 33.0}) {
            const auto model = train::ModelSpec::gpt2(billions);
            const auto base =
                runIteration(model, train::Strategy::Baseline, n);
            addBreakdownRow(table, model.name + " BASE", base, 1.0);
            for (auto strategy : {train::Strategy::SmartUpdateOpt,
                                  train::Strategy::SmartUpdateOptComp}) {
                const auto r = runIteration(model, strategy, n);
                addBreakdownRow(table,
                                model.name + " " +
                                    train::strategyName(strategy),
                                r, base.iteration_time / r.iteration_time);
            }
        }
        table.print(std::cout);
    }
    std::cout << "paper anchor (Fig 10): stable speedup on 16.6B-33.0B; "
                 "GPT-2 33.0B reaches 1.37x @6 and 1.88x @10 SSDs.\n";
    return 0;
}
