/**
 * @file
 * Fig 12: SmartUpdate with other optimizers (SGD with momentum, AdaGrad).
 * Both move 4M of optimizer states instead of Adam's 6M, so their speedup
 * is slightly below Adam's.
 */
#include "bench_util.h"

using namespace smartinf;
using namespace smartinf::bench;

int
main()
{
    const auto model = train::ModelSpec::gpt2(4.0);
    const optim::OptimizerKind kinds[] = {optim::OptimizerKind::SgdMomentum,
                                          optim::OptimizerKind::AdaGrad,
                                          optim::OptimizerKind::Adam};
    for (auto kind : kinds) {
        Table table(std::string("Fig 12: optimizer = ") +
                    optim::optimizerName(kind) + " (GPT-2 4.0B)");
        breakdownHeader(table);
        for (int n : {6, 10}) {
            const auto base = runIteration(model, train::Strategy::Baseline,
                                           n, train::GpuGrade::A5000, kind);
            addBreakdownRow(table, "BASE @" + std::to_string(n), base, 1.0);
            for (auto strategy : {train::Strategy::SmartUpdateOpt,
                                  train::Strategy::SmartUpdateOptComp}) {
                const auto r = runIteration(model, strategy, n,
                                            train::GpuGrade::A5000, kind);
                addBreakdownRow(table,
                                std::string(train::strategyName(strategy)) +
                                    " @" + std::to_string(n),
                                r, base.iteration_time / r.iteration_time);
            }
        }
        table.print(std::cout);
    }
    std::cout << "paper anchor (Fig 12): SGD/AdaGrad speedups slightly "
                 "below Adam's (3/4 of the state volume to move).\n";
    return 0;
}
