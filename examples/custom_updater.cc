/**
 * @file
 * Customization flow (paper §VI, Fig 8): users plug their own optimizer
 * logic into the framework as an "HLS module". This example implements a
 * signSGD-with-momentum updater, registers it, runs the template's sanity
 * checker and performance analyzer, and then trains through it near
 * storage — exercising the same path the built-in Adam kernel uses.
 */
#include <cmath>
#include <iostream>

#include "core/smart_infinity.h"

using namespace smartinf;

namespace {

/**
 * signSGD with momentum: m = beta*m + (1-beta)*g; p -= lr * sign(m).
 * Deliberately NOT one of the built-ins — shows the extension surface.
 */
class SignSgdUpdater final : public accel::UpdaterModule
{
  public:
    explicit SignSgdUpdater(const optim::Hyperparams &hp)
        : UpdaterModule(accel::UpdaterGeometry{}), hp_(hp)
    {
    }

    // Reuse the SGD family so shard layouts allocate one aux state.
    optim::OptimizerKind
    kind() const override
    {
        return optim::OptimizerKind::SgdMomentum;
    }

    const optim::Hyperparams &hyperparams() const override { return hp_; }

    void
    processSubgroup(float *master, const float *grad, float *const *states,
                    std::size_t n, uint64_t /*step*/) const override
    {
        float *mmt = states[0];
        for (std::size_t i = 0; i < n; ++i) {
            mmt[i] = optim::axpby(hp_.momentum, mmt[i], 1.0f - hp_.momentum,
                                  grad[i]);
            master[i] -= hp_.lr * (mmt[i] > 0.0f   ? 1.0f
                                   : mmt[i] < 0.0f ? -1.0f
                                                   : 0.0f);
        }
    }

    accel::ModuleFootprint
    footprint() const override
    {
        // Sign extraction is comparator logic: tiny, no DSP multipliers
        // beyond the momentum AXPBY.
        return accel::ModuleFootprint{"updater.signsgd", 72000, 150, 20, 70};
    }

    BytesPerSec modelThroughput() const override { return GBps(9.0); }

  private:
    optim::Hyperparams hp_;
};

} // namespace

int
main()
{
    // 1. Register the custom kernel like a user-supplied HLS template.
    auto &registry = accel::ModuleRegistry::instance();
    registry.registerUpdater("signsgd", [](const optim::Hyperparams &hp) {
        return std::make_unique<SignSgdUpdater>(hp);
    });

    // 2. Template tooling: performance analyzer + resource fit. (The
    // bundled sanity checker compares against the stock SGD reference, so
    // a genuinely new algorithm is validated by training instead.)
    optim::Hyperparams hp;
    hp.lr = 0.002f;
    hp.momentum = 0.9f;
    auto module = registry.makeUpdater("signsgd", hp);
    const auto perf = accel::analyzeUpdater(*module);
    accel::FpgaResourceModel fpga;
    fpga.place(module->footprint());
    std::cout << "signSGD updater: modeled "
              << perf.modeled_throughput / 1e9 << " GB/s ("
              << (perf.keeps_up_with_ssd ? "keeps up with SSD read"
                                         : "SLOWER than SSD read")
              << "), LUT utilization " << fpga.lutUtilization() * 100.0
              << "%\n";

    // 3. Train near-storage with the custom kernel installed manually.
    const auto ds = nn::makeTask(nn::TaskId::MnliLike, 2048, 512, 16, 77);
    nn::Mlp model({16, 48, 3}, nn::Activation::ReLU, 31);

    ClusterConfig config;
    config.num_csds = 2;
    config.optimizer = optim::OptimizerKind::SgdMomentum; // Layout: 1 state.
    config.hyperparams = hp;
    SmartInfinityCluster cluster(config);
    cluster.initialize(model.params(), model.paramCount());
    for (int d = 0; d < cluster.numCsds(); ++d)
        cluster.csd(d).installUpdater(registry.makeUpdater("signsgd", hp));

    nn::Trainer::Config tconfig;
    tconfig.epochs = 10;
    nn::Trainer trainer(model, cluster, tconfig);
    const auto report = trainer.fit(ds);
    std::cout << "signSGD near-storage fine-tune: dev accuracy "
              << report.dev_accuracy * 100.0 << "% after " << report.steps
              << " steps\n";
    return report.dev_accuracy > 0.7 ? 0 : 1;
}
