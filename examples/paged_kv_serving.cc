/**
 * @file
 * Paged KV-cache walkthrough: turn on the src/kv/ allocator, share a
 * system prompt across most of the request stream, and read the new
 * kv_cache statistics — hit rate, fragmentation, copy-on-write — next to
 * the serving percentiles they move. Everything runs through the same
 * declarative experiment layer as the serve_paged_kv / serve_prefix_cache
 * scenarios in smartinf_bench (DESIGN.md "The KV-cache model").
 */
#include <iostream>

#include "exp/experiment.h"
#include "exp/sweep_runner.h"
#include "serve/metrics.h"

using namespace smartinf;

int
main()
{
    const auto model = train::ModelSpec::gpt2(4.0);

    // A tight-memory serving node: 32 requests, 256-token prompts, and a
    // KV HBM budget a few requests' caches already overflow — the regime
    // where the layout and the prefix cache actually matter.
    serve::ServeConfig config;
    config.scheduler = serve::SchedulerPolicy::Continuous;
    config.num_requests = 32;
    config.arrival_rate = 0.25;
    config.prompt_tokens = 256;
    config.output_tokens = 16;
    config.max_batch = 8;
    config.kv.enabled = true;
    config.kv.hbm_budget = GiB(0.25);
    config.kv.host_budget = GiB(0.25);

    // The paged layout: the KV arena becomes fixed 16-token pages handed
    // out by a deterministic free-list allocator, and slot position is
    // tier position — fragmentation pushes live pages past the HBM edge.
    config.kv.layout = serve::KvLayout::Paged;
    config.kv.block_tokens = 16;

    // Shared system prompts: 2 templates covering the first 200 prompt
    // tokens. The share fraction is swept below; a request that hits the
    // prefix cache maps the cached pages refcounted and skips their
    // prefill compute and KV writes entirely. 200 is not a multiple of
    // 16, so each hit's first own token copy-on-writes the partial page.
    config.kv.prefix.num_prefixes = 2;
    config.kv.prefix.prefix_tokens = 200;

    const auto specs = exp::ExperimentBuilder()
                           .model(model)
                           .serving(config)
                           .strategy(train::Strategy::SmartUpdateOptComp)
                           .devices(6)
                           .prefixShareFractions({0.0, 0.5, 0.9})
                           .build();

    exp::SweepRunner runner(
        exp::SweepRunner::Options{.jobs = 3, .cache = true});
    for (const auto &record : runner.run(specs)) {
        const serve::ServingMetrics m = serve::summarize(record.result);
        const train::KvCacheStats &kv = record.result.kv;
        std::cout << record.spec.label << ":\n"
                  << "  TTFT p50 " << m.ttft.p50 << " s, p95 "
                  << m.latency.p95 << " s, " << m.output_tokens_per_sec
                  << " tok/s\n"
                  << "  prefix hit rate " << kv.hitRate() << " ("
                  << kv.prefix_hits << " hits, " << kv.prefix_evictions
                  << " evictions), " << kv.cow_copies << " COW copies\n"
                  << "  peak pages " << kv.peak_used_blocks << " (span "
                  << kv.peak_span_blocks << ", fragmentation "
                  << kv.peak_fragmentation << "), KV spill write "
                  << record.result.traffic.kv_spill_write / GB(1.0)
                  << " GB\n";
    }
    return 0;
}
