/**
 * @file
 * Serving quickstart: stand up an inference server on the storage-offload
 * substrate in ~50 lines — both through the raw Workload API (one engine,
 * one request stream, per-request latency records) and through the
 * declarative experiment layer (a BASE vs Smart sweep with percentile
 * reporting), the same path the serve_* scenarios in smartinf_bench use.
 */
#include <iostream>

#include "exp/experiment.h"
#include "exp/sweep_runner.h"
#include "serve/inference_workload.h"
#include "serve/metrics.h"
#include "train/engine.h"

using namespace smartinf;

int
main()
{
    const auto model = train::ModelSpec::gpt2(4.0);

    // ---- 1. One serving run through the Workload API -------------------
    // 16 requests arrive open-loop at 0.25 req/s; each prefills 256
    // tokens and decodes 16 more; the continuous-batching scheduler packs
    // up to 8 requests per step. Every forward pass re-streams the whole
    // model from storage.
    serve::ServeConfig config;
    config.scheduler = serve::SchedulerPolicy::Continuous;
    config.num_requests = 16;
    config.arrival_rate = 0.25;
    config.prompt_tokens = 256;
    config.output_tokens = 16;
    config.max_batch = 8;

    train::SystemConfig system;
    system.strategy = train::Strategy::SmartUpdateOptComp;
    system.num_devices = 6;

    auto engine = train::makeEngine(model, {}, system);
    serve::InferenceWorkload workload(model, config);
    const train::WorkloadResult result = engine->run(workload);

    const serve::ServingMetrics m = serve::summarize(result);
    std::cout << engine->name() << " served " << m.num_requests
              << " requests: p50 " << m.latency.p50 << " s, p95 "
              << m.latency.p95 << " s, p99 " << m.latency.p99 << " s, "
              << m.output_tokens_per_sec << " tok/s\n";
    const auto &first = result.requests.front();
    std::cout << "request 0: queued " << first.queueDelay()
              << " s, first token after " << first.timeToFirstToken()
              << " s, done at " << first.finish << " s\n";

    // ---- 2. The same study, declaratively ------------------------------
    // BASE vs quantized-weight Smart-Infinity at 1 and 4 replicas; the
    // sweep runner caches and parallelizes exactly as for training.
    const auto specs = exp::ExperimentBuilder()
                           .model(model)
                           .serving(config)
                           .strategies({train::Strategy::Baseline,
                                        train::Strategy::SmartUpdateOptComp})
                           .devices(6)
                           .nodes({1, 4})
                           .build();
    exp::SweepRunner runner(
        exp::SweepRunner::Options{.jobs = 4, .cache = true});
    for (const auto &record : runner.run(specs)) {
        const serve::ServingMetrics sm = serve::summarize(record.result);
        std::cout << record.spec.label << ": p95 " << sm.latency.p95
                  << " s, " << sm.requests_per_sec << " req/s\n";
    }
    return 0;
}
