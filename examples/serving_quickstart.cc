/**
 * @file
 * Serving quickstart: stand up an inference server on the storage-offload
 * substrate in ~50 lines — both through the raw Workload API (one engine,
 * one request stream, per-request latency records) and through the
 * declarative experiment layer (a BASE vs Smart sweep with percentile
 * reporting), the same path the serve_* scenarios in smartinf_bench use.
 */
#include <iostream>

#include "exp/experiment.h"
#include "exp/sweep_runner.h"
#include "serve/inference_workload.h"
#include "serve/metrics.h"
#include "train/engine.h"

using namespace smartinf;

int
main()
{
    const auto model = train::ModelSpec::gpt2(4.0);

    // ---- 1. One serving run through the Workload API -------------------
    // 16 requests arrive open-loop at 0.25 req/s; each prefills 256
    // tokens and decodes 16 more; the continuous-batching scheduler packs
    // up to 8 requests per step. Every forward pass re-streams the whole
    // model from storage.
    serve::ServeConfig config;
    config.scheduler = serve::SchedulerPolicy::Continuous;
    config.num_requests = 16;
    config.arrival_rate = 0.25;
    config.prompt_tokens = 256;
    config.output_tokens = 16;
    config.max_batch = 8;

    train::SystemConfig system;
    system.strategy = train::Strategy::SmartUpdateOptComp;
    system.num_devices = 6;

    auto engine = train::makeEngine(model, {}, system);
    serve::InferenceWorkload workload(model, config);
    const train::WorkloadResult result = engine->run(workload);

    const serve::ServingMetrics m = serve::summarize(result);
    std::cout << engine->name() << " served " << m.num_requests
              << " requests: p50 " << m.latency.p50 << " s, p95 "
              << m.latency.p95 << " s, p99 " << m.latency.p99 << " s, "
              << m.output_tokens_per_sec << " tok/s\n";
    const auto &first = result.requests.front();
    std::cout << "request 0: queued " << first.queueDelay()
              << " s, first token after " << first.timeToFirstToken()
              << " s, done at " << first.finish << " s\n";

    // ---- 2. The same study, declaratively ------------------------------
    // BASE vs quantized-weight Smart-Infinity at 1 and 4 replicas; the
    // sweep runner caches and parallelizes exactly as for training.
    const auto specs = exp::ExperimentBuilder()
                           .model(model)
                           .serving(config)
                           .strategies({train::Strategy::Baseline,
                                        train::Strategy::SmartUpdateOptComp})
                           .devices(6)
                           .nodes({1, 4})
                           .build();
    exp::SweepRunner runner(
        exp::SweepRunner::Options{.jobs = 4, .cache = true});
    for (const auto &record : runner.run(specs)) {
        const serve::ServingMetrics sm = serve::summarize(record.result);
        std::cout << record.spec.label << ": p95 " << sm.latency.p95
                  << " s, " << sm.requests_per_sec << " req/s\n";
    }

    // ---- 3. Serving fidelity knobs (PR 5) -------------------------------
    // Closed-loop clients (8 in flight, 0.5 s think), a heavy-tailed
    // output mix sampled before the simulation, and the tiered KV-cache
    // model: spilled decode reads become real flows that contend with
    // the parameter stream.
    serve::ServeConfig realistic = config;
    realistic.client_mode = serve::ClientMode::ClosedLoop;
    realistic.concurrency = 8;
    realistic.think_time = 0.5;
    realistic.output_lengths.kind = serve::LengthDistKind::Lognormal;
    realistic.output_lengths.log_mean = 2.77; // median ~16 tokens
    realistic.output_lengths.log_sigma = 0.8;
    realistic.output_lengths.min_tokens = 4;
    realistic.output_lengths.max_tokens = 128;
    realistic.kv.enabled = true;
    realistic.kv.hbm_budget = GiB(0.5);

    auto engine2 = train::makeEngine(model, {}, system);
    serve::InferenceWorkload realistic_load(model, realistic);
    const train::WorkloadResult r2 = engine2->run(realistic_load);
    const serve::ServingMetrics m2 = serve::summarize(r2);
    std::cout << "closed-loop mix: " << m2.output_tokens_per_sec
              << " tok/s at p95 " << m2.latency.p95 << " s; KV spill "
              << r2.traffic.kv_spill_read / GB(1.0) << " GB read\n";
    return 0;
}
