/**
 * @file
 * Quickstart: the two faces of the library in ~60 lines.
 *
 *  1. Functional: build a 4-CSD Smart-Infinity cluster, run near-storage
 *     Adam steps on a flat parameter vector, and verify the result matches
 *     a host-side update bit for bit.
 *  2. Performance: ask the calibrated timing model how much faster
 *     Smart-Infinity trains GPT-2 4.0B than the ZeRO-Infinity baseline on
 *     the same ten devices — declared with ExperimentBuilder and executed
 *     through the SweepRunner, the same path smartinf_bench uses.
 */
#include <iostream>
#include <vector>

#include "core/smart_infinity.h"
#include "exp/experiment.h"
#include "exp/sweep_runner.h"

using namespace smartinf;

int
main()
{
    // ---- 1. Functional near-storage update -----------------------------
    const std::size_t n = 100000;
    std::vector<float> params(n), grads(n);
    Rng rng(7);
    for (std::size_t i = 0; i < n; ++i) {
        params[i] = static_cast<float>(rng.normal());
        grads[i] = static_cast<float>(rng.normal(0.0, 0.01));
    }

    ClusterConfig config;
    config.num_csds = 4;
    SmartInfinityCluster cluster(config);
    cluster.initialize(params.data(), n);
    std::cout << "cluster backend: " << cluster.backendName() << ", "
              << cluster.numCsds() << " CSDs, "
              << "FPGA LUT utilization "
              << cluster.csd(0).resources().lutUtilization() * 100.0
              << "%\n";

    cluster.step(grads.data(), n, /*step=*/1);

    nn::HostBackend host(optim::OptimizerKind::Adam, optim::Hyperparams{});
    host.initialize(params.data(), n);
    host.step(grads.data(), n, 1);

    bool identical = true;
    for (std::size_t i = 0; i < n; ++i)
        identical &= (cluster.masterParams()[i] == host.masterParams()[i]);
    std::cout << "near-storage update vs host CPU update: "
              << (identical ? "bit-identical" : "MISMATCH") << "\n";

    // ---- 2. Performance model: a declarative two-point experiment ------
    const auto specs = exp::ExperimentBuilder()
                           .model(train::ModelSpec::gpt2(4.0))
                           .strategies({train::Strategy::Baseline,
                                        train::Strategy::SmartUpdateOptComp})
                           .devices(10)
                           .build();
    exp::SweepRunner runner(
        exp::SweepRunner::Options{.jobs = 2, .cache = true});
    const auto records = runner.run(specs);
    const auto &base = records[0].result;
    const auto &smart = records[1].result;
    std::cout << "GPT-2 4.0B on 10 devices: baseline "
              << base.iteration_time << " s/iter, Smart-Infinity "
              << smart.iteration_time << " s/iter -> "
              << base.iteration_time / smart.iteration_time
              << "x speedup\n";
    return identical ? 0 : 1;
}
