/**
 * @file
 * Fine-tuning case study (paper §VII-J): the paper fine-tunes *pretrained*
 * LLMs (BERT-345M from Megatron-LM, GPT-2 from the HuggingFace hub). We
 * mirror that: each task's model is first pretrained densely, then
 * fine-tuned three ways from the same checkpoint — host CPU updates (the
 * baseline), exact near-storage updates (SU+O), and SmartComp-compressed
 * updates at 2% wire volume. SmartUpdate must match the baseline exactly;
 * SmartComp should land within about a point.
 */
#include <iomanip>
#include <iostream>
#include <vector>

#include "core/smart_infinity.h"

using namespace smartinf;

namespace {

std::vector<std::size_t>
archFor(const nn::Dataset &ds)
{
    return {ds.input_dim, 48, 24, static_cast<std::size_t>(ds.num_classes)};
}

/** Dense pretraining: returns the checkpointed flat parameters. */
std::vector<float>
pretrain(const nn::Dataset &ds)
{
    nn::Mlp model(archFor(ds), nn::Activation::GELU, 5);
    nn::HostBackend host(optim::OptimizerKind::Adam, optim::Hyperparams{});
    nn::Trainer::Config config;
    config.epochs = 10;
    nn::Trainer(model, host, config).fit(ds);
    return {model.params(), model.params() + model.paramCount()};
}

/** Fine-tune from the checkpoint with the given backend. */
double
finetune(const nn::Dataset &ds, const std::vector<float> &checkpoint,
         nn::UpdateBackend &backend)
{
    nn::Mlp model(archFor(ds), nn::Activation::GELU, 5);
    model.setParams(checkpoint.data(), checkpoint.size());
    nn::Trainer::Config config;
    config.epochs = 4;
    config.shuffle_seed = 99;
    return nn::Trainer(model, backend, config).fit(ds).dev_accuracy;
}

} // namespace

int
main()
{
    std::cout << std::fixed << std::setprecision(2);
    std::cout << "task          baseline   SU+O       SU+O+C(2%)\n";
    std::cout << "---------------------------------------------\n";
    bool exact_everywhere = true;
    for (auto task : nn::allTasks()) {
        const auto ds = nn::makeTask(task, 2048, 512, 16, 2024);
        const auto checkpoint = pretrain(ds);

        nn::HostBackend host(optim::OptimizerKind::Adam,
                             optim::Hyperparams{});
        const double base_acc = finetune(ds, checkpoint, host);

        ClusterConfig exact_cfg;
        exact_cfg.num_csds = 2;
        SmartInfinityCluster exact(exact_cfg);
        const double exact_acc = finetune(ds, checkpoint, exact);

        ClusterConfig comp_cfg = exact_cfg;
        comp_cfg.compression = true;
        comp_cfg.keep_fraction = 0.01; // 2% wire volume.
        SmartInfinityCluster comp(comp_cfg);
        const double comp_acc = finetune(ds, checkpoint, comp);

        std::cout << std::left << std::setw(14) << nn::taskName(task)
                  << std::setw(11) << base_acc * 100.0 << std::setw(11)
                  << exact_acc * 100.0 << comp_acc * 100.0 << "\n";
        exact_everywhere &= (exact_acc == base_acc);
    }
    std::cout << "\nSU+O " << (exact_everywhere ? "matched" : "DID NOT match")
              << " the baseline exactly (the paper's 'algorithmically "
                 "identical' property); SmartComp trades a small accuracy "
                 "delta for a 50x smaller gradient offload.\n";
    return exact_everywhere ? 0 : 1;
}
