/**
 * @file
 * Capacity-planning study: a downstream user deciding how to provision a
 * single-server fine-tuning box. One ExperimentBuilder declares the model
 * size x device count x GPU grade cross product; the SweepRunner executes
 * it on every host core (the 48 engine runs are independent); the table
 * reports iteration time, speedup over the RAID0 baseline, and cost
 * efficiency — the Fig 10/11/15 analyses combined into one planning table.
 */
#include <algorithm>
#include <iostream>
#include <stdexcept>
#include <thread>

#include "common/table.h"
#include "exp/experiment.h"
#include "exp/sweep_runner.h"
#include "train/cost_model.h"

using namespace smartinf;
using namespace smartinf::train;

int
main()
{
    const std::vector<ModelSpec> models = {
        ModelSpec::gpt2(4.0), ModelSpec::gpt2(8.4), ModelSpec::gpt2(16.6),
        ModelSpec::gpt2(33.0)};
    const auto specs =
        exp::ExperimentBuilder()
            .models(models)
            .strategies({Strategy::Baseline, Strategy::SmartUpdateOptComp})
            .devices({4, 8, 10})
            .gpus({GpuGrade::A5000, GpuGrade::A100_40GB})
            .build();

    const int jobs = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
    exp::SweepRunner runner(
        exp::SweepRunner::Options{.jobs = jobs, .cache = true});
    const auto records = runner.run(specs);

    auto at = [&](const ModelSpec &model, Strategy s, GpuGrade gpu,
                  int n) -> const exp::RunRecord & {
        for (const auto &rec : records)
            if (rec.spec.model.name == model.name &&
                rec.spec.system.strategy == s &&
                rec.spec.system.gpu == gpu &&
                rec.spec.system.num_devices == n)
                return rec;
        throw std::logic_error("missing record");
    };

    Table table("Single-server LLM fine-tuning: provisioning sweep");
    table.setHeader({"model", "GPU", "#devices", "BASE s/iter",
                     "Smart s/iter", "speedup", "Smart GFLOPS/$"});
    for (const auto &model : models) {
        for (auto gpu : {GpuGrade::A5000, GpuGrade::A100_40GB}) {
            for (int n : {4, 8, 10}) {
                const auto &base = at(model, Strategy::Baseline, gpu, n);
                const auto &smart =
                    at(model, Strategy::SmartUpdateOptComp, gpu, n);
                table.addRow(
                    {model.name, gpuName(gpu), std::to_string(n),
                     Table::num(base.result.iteration_time),
                     Table::num(smart.result.iteration_time),
                     Table::factor(base.result.iteration_time /
                                   smart.result.iteration_time),
                     Table::num(gflopsPerDollar(smart.spec.model,
                                                smart.spec.train,
                                                smart.spec.system,
                                                smart.result),
                                4)});
            }
        }
    }
    table.print(std::cout);
    std::cout << "Reading: speedup grows with device count and GPU grade "
                 "(storage share of the iteration grows); cost efficiency "
                 "favors Smart-Infinity from ~4 devices up. ("
              << runner.executedRuns() << " engine runs on " << jobs
              << " threads)\n";
    return 0;
}
