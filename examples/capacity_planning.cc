/**
 * @file
 * Capacity-planning study: a downstream user deciding how to provision a
 * single-server fine-tuning box. Sweeps model size x device count x GPU
 * grade through the calibrated timing model and prints iteration time,
 * speedup over the RAID0 baseline, and cost efficiency — the Fig 10/11/15
 * analyses combined into one planning table.
 */
#include <iostream>

#include "common/table.h"
#include "train/cost_model.h"
#include "train/engine.h"

using namespace smartinf;
using namespace smartinf::train;

int
main()
{
    TrainConfig tc;
    Table table("Single-server LLM fine-tuning: provisioning sweep");
    table.setHeader({"model", "GPU", "#devices", "BASE s/iter",
                     "Smart s/iter", "speedup", "Smart GFLOPS/$"});

    for (double billions : {4.0, 8.4, 16.6, 33.0}) {
        const auto model = ModelSpec::gpt2(billions);
        for (auto gpu : {GpuGrade::A5000, GpuGrade::A100_40GB}) {
            for (int n : {4, 8, 10}) {
                SystemConfig base_cfg;
                base_cfg.num_devices = n;
                base_cfg.gpu = gpu;
                const auto base =
                    makeEngine(model, tc, base_cfg)->runIteration();

                SystemConfig smart_cfg = base_cfg;
                smart_cfg.strategy = Strategy::SmartUpdateOptComp;
                const auto smart =
                    makeEngine(model, tc, smart_cfg)->runIteration();

                table.addRow(
                    {model.name, gpuName(gpu), std::to_string(n),
                     Table::num(base.iteration_time),
                     Table::num(smart.iteration_time),
                     Table::factor(base.iteration_time /
                                   smart.iteration_time),
                     Table::num(
                         gflopsPerDollar(model, tc, smart_cfg, smart), 4)});
            }
        }
    }
    table.print(std::cout);
    std::cout << "Reading: speedup grows with device count and GPU grade "
                 "(storage share of the iteration grows); cost efficiency "
                 "favors Smart-Infinity from ~4 devices up.\n";
    return 0;
}
